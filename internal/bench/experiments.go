package bench

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/measures"
	"repro/internal/order"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// Experiment is a harness entry regenerating one paper item.
type Experiment struct {
	ID    string
	Paper string // the table/figure it reproduces
	Run   func(d Datasets) ([]*Table, error)
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"fig1", "Figure 1/2: PR time series of one page, key moments", Fig1},
		{"fig5", "Figure 5: INC quality-loss vs matrix index", Fig5},
		{"fig6", "Figure 6: average quality-loss vs alpha", Fig6},
		{"fig7", "Figure 7: speedup over BF vs alpha", Fig7},
		{"fig8", "Figure 8: CLUDE time breakdown; Bennett time CINC vs CLUDE", Fig8},
		{"fig9", "Figure 9: quality & speedup vs DeltaE (synthetic)", Fig9},
		{"fig10", "Figure 10: LUDEM-QC quality & speedup vs beta (DBLP)", Fig10},
		{"fig11", "Figure 11: patent case study PPR ranks", Fig11},
		{"tblSolve", "Section 1/8 claims: solve-after-LU vs GE, PI, MC", TblSolve},
		{"tblBennett", "Section 4 claim: list restructuring share of Bennett time", TblBennett},
		{"ablation", "DESIGN.md §6: ordering quality and USSP slack ablations", Ablation},
		{"parallel", "Engine: wall-clock scaling vs worker-pool size (beyond the paper)", Parallel},
		{"serving", "Serving layer: query throughput/latency vs pool size, cache hit rate", Serving},
		{"sparsesolve", "Serving layer: reach-based sparse vs dense solve latency vs cluster count", SparseSolve},
		{"streaming", "Streaming engine: update throughput vs live query latency vs batch size; publish-path allocations", Streaming},
		{"persistence", "Durability: warm restart vs cold refactorization; WAL fsync ingest cost (beyond the paper)", Persistence},
		{"loadtest", "Serving pipeline under load: coalesce/batch/shed vs the unbatched single-solve path (beyond the paper)", LoadTest},
		{"supernodal", "Query path: supernodal panel-packed vs scalar blocked substitution on community factors (beyond the paper)", Supernodal},
		{"history", "Serving layer: delta-compressed factor history — resident bytes and materialization latency vs base spacing (beyond the paper)", History},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// Fig1 tracks the PageRank score of one page across the Wiki EGS using
// CLUDE-streamed factors and reports the largest day-over-day changes
// (the paper's "key moments", Figures 1–2).
func Fig1(d Datasets) ([]*Table, error) {
	egs, ems, err := wikiEMS(d)
	if err != nil {
		return nil, err
	}
	// Track the page whose score changes most (found post hoc);
	// recording all scores is cheap at harness scale.
	n := ems.N()
	scores := make([][]float64, ems.Len())
	_, err = core.Run(ems, core.CLUDE, core.Options{Workers: d.Workers,
		Alpha: 0.95,
		OnFactors: func(i int, s *lu.Solver) {
			e := measures.NewEngineFromSolver(egs.Snapshots[i], d.Damping, s)
			scores[i] = e.PageRank()
		},
	})
	if err != nil {
		return nil, err
	}
	// Pick the page with the largest relative score swing.
	page, bestSwing := 0, 0.0
	for v := 0; v < n; v++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for t := range scores {
			s := scores[t][v]
			lo = math.Min(lo, s)
			hi = math.Max(hi, s)
		}
		if lo > 0 {
			if swing := hi / lo; swing > bestSwing {
				bestSwing, page = swing, v
			}
		}
	}
	series := &Table{
		Title:  fmt.Sprintf("PR score of page %d over the EGS (swing %.2fx)", page, bestSwing),
		Header: []string{"snapshot", "PR score"},
	}
	step := maxInt(1, ems.Len()/25)
	for t := 0; t < ems.Len(); t += step {
		series.Rows = append(series.Rows, []string{fmt.Sprint(t), fmt.Sprintf("%.3e", scores[t][page])})
	}
	// Key moments: top day-over-day relative jumps.
	type moment struct {
		t    int
		jump float64
	}
	var ms []moment
	for t := 1; t < ems.Len(); t++ {
		prev := scores[t-1][page]
		if prev > 0 {
			ms = append(ms, moment{t, math.Abs(scores[t][page]-prev) / prev})
		}
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].jump > ms[j].jump })
	moments := &Table{
		Title:  "Key moments (largest day-over-day PR changes)",
		Header: []string{"snapshot", "relative change"},
	}
	for i := 0; i < minInt(5, len(ms)); i++ {
		moments.Rows = append(moments.Rows, []string{fmt.Sprint(ms[i].t), f(ms[i].jump)})
	}
	return []*Table{series, moments}, nil
}

// Fig5 reproduces the INC quality-degradation curves: ql(O*(A1), Ai)
// vs i on both datasets.
func Fig5(d Datasets) ([]*Table, error) {
	var out []*Table
	for _, ds := range []string{"Wikipedia", "DBLP"} {
		ems, err := emsByName(d, ds)
		if err != nil {
			return nil, err
		}
		bf, err := core.Run(ems, core.BF, core.Options{Workers: d.Workers})
		if err != nil {
			return nil, err
		}
		inc, err := core.Run(ems, core.INC, core.Options{Workers: d.Workers, MeasureQuality: true})
		if err != nil {
			return nil, err
		}
		ql := core.QualityLoss(inc.SSPSizes, bf.SSPSizes)
		tbl := &Table{
			Title:  fmt.Sprintf("INC quality-loss vs matrix index (%s); average %.3f", ds, core.Mean(ql)),
			Header: []string{"matrix index", "quality-loss"},
		}
		step := maxInt(1, len(ql)/20)
		for i := 0; i < len(ql); i += step {
			tbl.Rows = append(tbl.Rows, []string{fmt.Sprint(i), f(ql[i])})
		}
		out = append(out, tbl)
	}
	return out, nil
}

// Fig6 sweeps α and reports the average quality-loss of CINC and CLUDE
// on both datasets.
func Fig6(d Datasets) ([]*Table, error) {
	var out []*Table
	for _, ds := range []string{"Wikipedia", "DBLP"} {
		ems, err := emsByName(d, ds)
		if err != nil {
			return nil, err
		}
		bf, err := core.Run(ems, core.BF, core.Options{Workers: d.Workers})
		if err != nil {
			return nil, err
		}
		tbl := &Table{
			Title:  fmt.Sprintf("Average quality-loss vs alpha (%s)", ds),
			Header: []string{"alpha", "CINC", "CLUDE", "clusters(CINC)", "clusters(CLUDE)"},
		}
		for _, a := range d.Alphas {
			cinc, err := core.Run(ems, core.CINC, core.Options{Workers: d.Workers, Alpha: a, MeasureQuality: true})
			if err != nil {
				return nil, err
			}
			clude, err := core.Run(ems, core.CLUDE, core.Options{Workers: d.Workers, Alpha: a, MeasureQuality: true})
			if err != nil {
				return nil, err
			}
			tbl.Rows = append(tbl.Rows, []string{
				f(a),
				f(core.Mean(core.QualityLoss(cinc.SSPSizes, bf.SSPSizes))),
				f(core.Mean(core.QualityLoss(clude.SSPSizes, bf.SSPSizes))),
				fmt.Sprint(len(cinc.Clusters)),
				fmt.Sprint(len(clude.Clusters)),
			})
		}
		out = append(out, tbl)
	}
	return out, nil
}

// Fig7 sweeps α and reports speedups over BF for INC, CINC, CLUDE.
func Fig7(d Datasets) ([]*Table, error) {
	var out []*Table
	for _, ds := range []string{"Wikipedia", "DBLP"} {
		ems, err := emsByName(d, ds)
		if err != nil {
			return nil, err
		}
		bf, err := core.Run(ems, core.BF, core.Options{Workers: d.Workers})
		if err != nil {
			return nil, err
		}
		inc, err := core.Run(ems, core.INC, core.Options{Workers: d.Workers})
		if err != nil {
			return nil, err
		}
		incSpeed := speedup(bf.Wall, inc.Wall)
		tbl := &Table{
			Title:  fmt.Sprintf("Speedup over BF vs alpha (%s); BF wall %s, INC %.2fx", ds, dur(bf.Wall), incSpeed),
			Header: []string{"alpha", "INC", "CINC", "CLUDE"},
		}
		for _, a := range d.Alphas {
			cinc, err := core.Run(ems, core.CINC, core.Options{Workers: d.Workers, Alpha: a})
			if err != nil {
				return nil, err
			}
			clude, err := core.Run(ems, core.CLUDE, core.Options{Workers: d.Workers, Alpha: a})
			if err != nil {
				return nil, err
			}
			tbl.Rows = append(tbl.Rows, []string{
				f(a), f(incSpeed),
				f(speedup(bf.Wall, cinc.Wall)),
				f(speedup(bf.Wall, clude.Wall)),
			})
		}
		out = append(out, tbl)
	}
	return out, nil
}

// Fig8 reports (a) CLUDE's execution-time breakdown across α and (b)
// the Bennett-phase time of CINC vs CLUDE, on the Wiki dataset.
func Fig8(d Datasets) ([]*Table, error) {
	_, ems, err := wikiEMS(d)
	if err != nil {
		return nil, err
	}
	breakdown := &Table{
		Title:  "CLUDE execution-time breakdown vs alpha (Wiki)",
		Header: []string{"alpha", "total", "clustering", "markowitz", "fullLU", "bennett"},
	}
	headToHead := &Table{
		Title:  "Bennett time: CINC vs CLUDE (Wiki)",
		Header: []string{"alpha", "CINC bennett", "CLUDE bennett", "CINC inserts", "CINC scan steps"},
	}
	for _, a := range d.Alphas {
		clude, err := core.Run(ems, core.CLUDE, core.Options{Workers: d.Workers, Alpha: a})
		if err != nil {
			return nil, err
		}
		cinc, err := core.Run(ems, core.CINC, core.Options{Workers: d.Workers, Alpha: a})
		if err != nil {
			return nil, err
		}
		breakdown.Rows = append(breakdown.Rows, []string{
			f(a), dur(clude.Wall),
			dur(clude.Times.Clustering), dur(clude.Times.Ordering),
			dur(clude.Times.FullLU), dur(clude.Times.Bennett),
		})
		headToHead.Rows = append(headToHead.Rows, []string{
			f(a), dur(cinc.Times.Bennett), dur(clude.Times.Bennett),
			fmt.Sprint(cinc.DynamicInserts), fmt.Sprint(cinc.DynamicScanSteps),
		})
	}
	return []*Table{breakdown, headToHead}, nil
}

// Fig9 sweeps the synthetic generator's ∆E and reports average
// quality-loss and speedup for INC, CINC, CLUDE (α fixed at 0.95 as in
// the paper's stable region).
func Fig9(d Datasets) ([]*Table, error) {
	quality := &Table{
		Title:  "Average quality-loss vs DeltaE (synthetic)",
		Header: []string{"DeltaE", "INC", "CINC", "CLUDE"},
	}
	speed := &Table{
		Title:  "Speedup over BF vs DeltaE (synthetic)",
		Header: []string{"DeltaE", "INC", "CINC", "CLUDE"},
	}
	const alpha = 0.95
	for _, de := range d.DeltaEs {
		cfg := d.Synthetic
		cfg.DeltaE = de
		egs, err := gen.Synthetic(cfg)
		if err != nil {
			return nil, err
		}
		ems := graph.DeriveEMS(egs, graph.RWRMatrix(d.Damping))
		bf, err := core.Run(ems, core.BF, core.Options{Workers: d.Workers})
		if err != nil {
			return nil, err
		}
		inc, err := core.Run(ems, core.INC, core.Options{Workers: d.Workers, MeasureQuality: true})
		if err != nil {
			return nil, err
		}
		cinc, err := core.Run(ems, core.CINC, core.Options{Workers: d.Workers, Alpha: alpha, MeasureQuality: true})
		if err != nil {
			return nil, err
		}
		clude, err := core.Run(ems, core.CLUDE, core.Options{Workers: d.Workers, Alpha: alpha, MeasureQuality: true})
		if err != nil {
			return nil, err
		}
		quality.Rows = append(quality.Rows, []string{
			fmt.Sprint(de),
			f(core.Mean(core.QualityLoss(inc.SSPSizes, bf.SSPSizes))),
			f(core.Mean(core.QualityLoss(cinc.SSPSizes, bf.SSPSizes))),
			f(core.Mean(core.QualityLoss(clude.SSPSizes, bf.SSPSizes))),
		})
		speed.Rows = append(speed.Rows, []string{
			fmt.Sprint(de),
			f(speedup(bf.Wall, inc.Wall)),
			f(speedup(bf.Wall, cinc.Wall)),
			f(speedup(bf.Wall, clude.Wall)),
		})
	}
	return []*Table{quality, speed}, nil
}

// Fig10 sweeps β for the LUDEM-QC problem on the symmetric DBLP EMS.
func Fig10(d Datasets) ([]*Table, error) {
	_, ems, err := dblpEMS(d)
	if err != nil {
		return nil, err
	}
	bf, err := core.Run(ems, core.BF, core.Options{Workers: d.Workers})
	if err != nil {
		return nil, err
	}
	inc, err := core.Run(ems, core.INC, core.Options{Workers: d.Workers})
	if err != nil {
		return nil, err
	}
	star := core.StarSizes(ems, true)
	quality := &Table{
		Title:  "LUDEM-QC: average quality-loss vs beta (DBLP)",
		Header: []string{"beta", "CINC", "CLUDE", "clusters(CINC)", "clusters(CLUDE)"},
	}
	speed := &Table{
		Title:  fmt.Sprintf("LUDEM-QC: speedup over BF vs beta (DBLP); INC %.2fx", speedup(bf.Wall, inc.Wall)),
		Header: []string{"beta", "CINC", "CLUDE"},
	}
	for _, b := range d.Betas {
		cinc, err := core.RunQC(ems, core.CINC, b, core.Options{Workers: d.Workers, MeasureQuality: true, StarSizes: star})
		if err != nil {
			return nil, err
		}
		clude, err := core.RunQC(ems, core.CLUDE, b, core.Options{Workers: d.Workers, MeasureQuality: true, StarSizes: star})
		if err != nil {
			return nil, err
		}
		quality.Rows = append(quality.Rows, []string{
			f(b),
			f(core.Mean(core.QualityLoss(cinc.SSPSizes, star))),
			f(core.Mean(core.QualityLoss(clude.SSPSizes, star))),
			fmt.Sprint(len(cinc.Clusters)),
			fmt.Sprint(len(clude.Clusters)),
		})
		speed.Rows = append(speed.Rows, []string{
			f(b),
			f(speedup(bf.Wall, cinc.Wall)),
			f(speedup(bf.Wall, clude.Wall)),
		})
	}
	return []*Table{quality, speed}, nil
}

// Fig11 runs the patent case study: yearly PPR proximity of each
// company from the subject company's patents, reported as ranks. The
// planted riser must climb.
func Fig11(d Datasets) ([]*Table, error) {
	data, err := gen.PatentSim(d.Patent)
	if err != nil {
		return nil, err
	}
	// Reverse the citation arcs: random-walk mass from the subject's
	// patents must flow toward the patents *citing* them.
	egs := reverseEGS(data.EGS)
	nc := len(data.Names)
	subject := 0

	tbl := &Table{
		Title:  fmt.Sprintf("Company proximity rank from %s patents (PPR), yearly", data.Names[subject]),
		Header: append([]string{"year"}, data.Names[1:]...),
	}
	ems := graph.DeriveEMS(egs, graph.RWRMatrix(d.Damping))
	ranksPerYear := make([][]int, ems.Len())
	_, err = core.Run(ems, core.CLUDE, core.Options{Workers: d.Workers,
		Alpha: 0.9,
		OnFactors: func(year int, s *lu.Solver) {
			e := measures.NewEngineFromSolver(egs.Snapshots[year], d.Damping, s)
			var seeds []int
			for v := 0; v < egs.N(); v++ {
				if data.Company[v] == subject && data.GrantYear[v] <= year {
					seeds = append(seeds, v)
				}
			}
			ppr := e.PPR(seeds)
			prox := make([]float64, nc)
			for v := 0; v < egs.N(); v++ {
				if data.GrantYear[v] <= year {
					prox[data.Company[v]] += ppr[v]
				}
			}
			// Rank companies other than the subject by proximity.
			scores := prox[1:]
			ranksPerYear[year] = measures.Ranks(scores)
		},
	})
	if err != nil {
		return nil, err
	}
	for year, ranks := range ranksPerYear {
		row := []string{fmt.Sprint(1979 + year)}
		for _, r := range ranks {
			row = append(row, fmt.Sprint(r))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	riser := data.Names[d.Patent.RisingCompany]
	early := ranksPerYear[1][d.Patent.RisingCompany-1]
	late := ranksPerYear[len(ranksPerYear)-1][d.Patent.RisingCompany-1]
	note := &Table{
		Title:  fmt.Sprintf("Riser check: %s rank year1=%d final=%d (must improve)", riser, early, late),
		Header: []string{"company", "rank year 1", "rank final year"},
	}
	for c := 1; c < nc; c++ {
		note.Rows = append(note.Rows, []string{
			data.Names[c],
			fmt.Sprint(ranksPerYear[1][c-1]),
			fmt.Sprint(ranksPerYear[len(ranksPerYear)-1][c-1]),
		})
	}
	return []*Table{tbl, note}, nil
}

// TblSolve quantifies the §1 claim chain on one Wiki snapshot: a
// forward/backward solve on prepared LU factors vs (a) a from-scratch
// GE per query, (b) power iteration, (c) Monte Carlo.
func TblSolve(d Datasets) ([]*Table, error) {
	egs, ems, err := wikiEMS(d)
	if err != nil {
		return nil, err
	}
	g := egs.Snapshots[egs.Len()-1]
	a := ems.Matrices[ems.Len()-1]
	ord := orderOf(a)
	solver, err := lu.FactorizeOrdered(a, ord)
	if err != nil {
		return nil, err
	}
	u := 0
	b := sparse.Basis(g.N(), u, 1-d.Damping)

	reps := 50
	t0 := time.Now()
	for r := 0; r < reps; r++ {
		_ = solver.Solve(b)
	}
	solveT := time.Since(t0) / time.Duration(reps)

	t1 := time.Now()
	geReps := 3
	for r := 0; r < geReps; r++ {
		if _, err := measures.SolveFreshGE(g, d.Damping, b); err != nil {
			return nil, err
		}
	}
	geT := time.Since(t1) / time.Duration(geReps)

	t2 := time.Now()
	_, iters := measures.PowerIterationRWR(g, d.Damping, u, 1e-10, 10000)
	piT := time.Since(t2)

	t3 := time.Now()
	_ = measures.MonteCarloRWR(g, d.Damping, u, 2000, 100, xrand.New(9))
	mcT := time.Since(t3)

	tbl := &Table{
		Title:  "Per-query cost of RWR on one Wiki snapshot",
		Header: []string{"method", "time/query", "vs LU-solve"},
		Rows: [][]string{
			{"LU solve (factors ready)", dur(solveT), "1x"},
			{"fresh GE per query", dur(geT), f(float64(geT) / float64(solveT))},
			{fmt.Sprintf("power iteration (%d iters)", iters), dur(piT), f(float64(piT) / float64(solveT))},
			{"Monte Carlo (2000 walks)", dur(mcT), f(float64(mcT) / float64(solveT))},
		},
	}
	return []*Table{tbl}, nil
}

// TblBennett isolates the paper's 70%-restructuring claim: the same
// cluster of updates through the dynamic container (INC/CINC style) vs
// the static USSP container (CLUDE style).
func TblBennett(d Datasets) ([]*Table, error) {
	_, ems, err := wikiEMS(d)
	if err != nil {
		return nil, err
	}
	cinc, err := core.Run(ems, core.CINC, core.Options{Workers: d.Workers, Alpha: 0.95})
	if err != nil {
		return nil, err
	}
	clude, err := core.Run(ems, core.CLUDE, core.Options{Workers: d.Workers, Alpha: 0.95})
	if err != nil {
		return nil, err
	}
	ratio := float64(cinc.Times.Bennett) / math.Max(1, float64(clude.Times.Bennett))
	tbl := &Table{
		Title:  "Bennett phase: dynamic (CINC) vs static USSP (CLUDE), Wiki, alpha=0.95",
		Header: []string{"metric", "CINC (dynamic lists)", "CLUDE (static USSP)"},
		Rows: [][]string{
			{"bennett time", dur(cinc.Times.Bennett), dur(clude.Times.Bennett)},
			{"list inserts", fmt.Sprint(cinc.DynamicInserts), "0"},
			{"list scan steps", fmt.Sprint(cinc.DynamicScanSteps), "0"},
			{"dynamic/static time ratio", f(ratio), "1"},
		},
	}
	return []*Table{tbl}, nil
}

// --- helpers ---

func emsByName(d Datasets, name string) (*graph.EMS, error) {
	switch name {
	case "Wikipedia":
		_, ems, err := wikiEMS(d)
		return ems, err
	case "DBLP":
		_, ems, err := dblpEMS(d)
		return ems, err
	}
	return nil, fmt.Errorf("bench: unknown dataset %q", name)
}

func speedup(base, t time.Duration) float64 {
	if t <= 0 {
		return math.Inf(1)
	}
	return float64(base) / float64(t)
}

// orderOf computes the Markowitz ordering of a matrix (tiny wrapper to
// keep the experiment code terse).
func orderOf(a *sparse.CSR) sparse.Ordering {
	return markowitzOrdering(a.Pattern())
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// markowitzOrdering is a local indirection so experiments.go reads
// without the order-package plumbing inline.
func markowitzOrdering(p *sparse.Pattern) sparse.Ordering {
	return order.Markowitz(p).Ordering
}

// reverseEGS flips every snapshot's arcs (see graph.Reverse).
func reverseEGS(s *graph.EGS) *graph.EGS {
	snaps := make([]*graph.Graph, s.Len())
	for i, g := range s.Snapshots {
		snaps[i] = g.Reverse()
	}
	out, err := graph.NewEGS(snaps)
	if err != nil {
		panic(err) // reversal preserves EGS invariants
	}
	return out
}
