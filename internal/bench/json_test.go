package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestWriteJSONCreatesMissingDir pins the contract that local -json
// runs (and BENCH_JSON_DIR pointing at a fresh path) work without
// pre-creating the artifact directory: deeply missing directories are
// created, and a bare relative filename writes into the working
// directory.
func TestWriteJSONCreatesMissingDir(t *testing.T) {
	base := t.TempDir()
	deep := ArtifactPath(filepath.Join(base, "a", "b", "c"), "streaming")
	if err := WriteJSON(deep, NewReport()); err != nil {
		t.Fatalf("WriteJSON into missing nested dir: %v", err)
	}
	if _, err := os.Stat(deep); err != nil {
		t.Fatal(err)
	}

	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(base); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(cwd); err != nil {
			t.Fatal(err)
		}
	}()
	if err := WriteJSON("bare.json", NewReport()); err != nil {
		t.Fatalf("WriteJSON with a bare relative path: %v", err)
	}
	if _, err := os.Stat(filepath.Join(base, "bare.json")); err != nil {
		t.Fatal(err)
	}
}

// TestWriteJSONRoundTrip persists a report and reads it back.
func TestWriteJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := ArtifactPath(filepath.Join(dir, "nested"), "fig7")
	if filepath.Base(path) != "BENCH_fig7.json" {
		t.Fatalf("artifact name %q", filepath.Base(path))
	}

	r := NewReport()
	e, err := Find("fig7")
	if err != nil {
		t.Fatal(err)
	}
	r.Add(e, Tiny, 1, 1500*time.Microsecond, 42, 4096, []*Table{{
		Title:  "t",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
	}})
	if err := WriteJSON(path, r); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Runs) != 1 || back.Runs[0].Experiment != "fig7" || back.Runs[0].Scale != "tiny" {
		t.Fatalf("round trip lost run metadata: %+v", back.Runs)
	}
	if back.Runs[0].ElapsedMS != 1.5 {
		t.Fatalf("elapsed %v, want 1.5", back.Runs[0].ElapsedMS)
	}
	if back.Runs[0].AllocsPerOp != 42 || back.Runs[0].BytesPerOp != 4096 {
		t.Fatalf("allocation record lost: %+v", back.Runs[0])
	}
	if len(back.Runs[0].Tables) != 1 || back.Runs[0].Tables[0].Rows[0][1] != "2" {
		t.Fatalf("round trip lost table data: %+v", back.Runs[0].Tables)
	}
	if back.GoVersion == "" || back.CreatedAt == "" {
		t.Fatal("environment stamp missing")
	}
}
