package bench

import (
	"fmt"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/measures"
	"repro/internal/xrand"
)

// SparseSolve measures the reach-based sparse-RHS solve path against
// the dense forward/backward substitution for single-seed queries —
// the serving layer's hot path.
//
// Two sweeps on the DBLP-like generator:
//
//  1. Community count with fully partitioned communities (no
//     cross-community papers): a seed's dependency closure stays
//     inside its community, so the reach — and the sparse path's work
//     — shrinks as 1/C while the dense path still sweeps all of n.
//     This is the clustered regime the sparse path exists for.
//  2. Cross-community linkage at a fixed community count: every added
//     bridge inflates the reach toward n, degrading the sparse path
//     below the dense one — the data behind the
//     measures.DefaultReachFraction fallback threshold.
func SparseSolve(d Datasets) ([]*Table, error) {
	clusters := &Table{
		Title: fmt.Sprintf("Single-seed solve: sparse vs dense vs community count (DBLP-like, n=%d, disjoint communities)", d.DBLP.N),
		Header: []string{"communities", "fill |L+U+D|", "avg reach frac",
			"dense/query", "sparse/query", "speedup"},
	}
	bridges := &Table{
		Title: fmt.Sprintf("Single-seed solve: sparse vs dense vs cross-community linkage (DBLP-like, n=%d, 8 communities)", d.DBLP.N),
		Header: []string{"cross frac", "fill |L+U+D|", "avg reach frac",
			"dense/query", "sparse/query", "speedup"},
	}
	verify := &Table{
		Title:  "Sparse-path checksum (max |sparse − dense| over sampled queries; must be 0)",
		Header: []string{"config", "max abs diff"},
	}

	for _, comm := range []int{1, 2, 4, 8, 16} {
		cfg := d.DBLP
		cfg.Communities = comm
		cfg.CrossCommunity = 0
		row, check, err := sparseVsDense(d, cfg, fmt.Sprint(comm))
		if err != nil {
			return nil, err
		}
		clusters.Rows = append(clusters.Rows, row)
		verify.Rows = append(verify.Rows, check)
	}
	for _, cross := range []float64{0, 0.01, 0.05, 0.2} {
		cfg := d.DBLP
		cfg.Communities = 8
		cfg.CrossCommunity = cross
		row, check, err := sparseVsDense(d, cfg, fmt.Sprintf("cross=%g", cross))
		if err != nil {
			return nil, err
		}
		bridges.Rows = append(bridges.Rows, row)
		verify.Rows = append(verify.Rows, check)
	}
	return []*Table{clusters, bridges, verify}, nil
}

// sparseVsDense times both solve paths over a sampled single-seed
// query stream on the last snapshot of one generator configuration,
// returning the result row (led by the caller's sweep label) and the
// checksum row.
func sparseVsDense(d Datasets, cfg gen.DBLPConfig, label string) (row, check []string, err error) {
	egs, err := gen.DBLPSim(cfg)
	if err != nil {
		return nil, nil, err
	}
	ems := graph.DeriveEMS(egs, graph.SymmetricWalkMatrix(d.Damping))
	a := ems.Matrices[ems.Len()-1]
	solver, err := lu.FactorizeOrdered(a, orderOf(a))
	if err != nil {
		return nil, nil, err
	}
	n := a.N()
	me := measures.NewSolverEngine(d.Damping, solver)

	rng := xrand.New(77)
	q := minInt(n, 200)
	seeds := make([]int, q)
	for i := range seeds {
		seeds[i] = rng.Intn(n)
	}
	const reps = 5

	// Dense path: one workspace, reusable result buffer.
	var dws lu.SolveWorkspace
	dense := make([]float64, n)
	t0 := time.Now()
	for r := 0; r < reps; r++ {
		for _, u := range seeds {
			dense = me.RWRInto(dense, u, &dws)
		}
	}
	denseT := time.Since(t0) / time.Duration(reps*q)

	// Sparse path, uncapped so the table reports the true reach.
	var sws lu.SparseSolveWorkspace
	rows := 0
	t1 := time.Now()
	for r := 0; r < reps; r++ {
		rows = 0
		for _, u := range seeds {
			sp, ok := me.RWRSparse(u, 1, &sws)
			if !ok {
				return nil, nil, fmt.Errorf("bench: uncapped sparse solve fell back (%s)", label)
			}
			rows += len(sp.Idx)
		}
	}
	sparseT := time.Since(t1) / time.Duration(reps*q)

	// Correctness spot check outside the timed loops.
	maxDiff := 0.0
	for _, u := range seeds[:minInt(q, 20)] {
		ref := me.RWRWith(u, &dws)
		sp, _ := me.RWRSparse(u, 1, &sws)
		got := sp.Dense(nil)
		for i := range ref {
			if diff := abs64(got[i] - ref[i]); diff > maxDiff {
				maxDiff = diff
			}
		}
	}

	reachFrac := float64(rows) / float64(q*n)
	row = []string{
		label,
		fmt.Sprint(solver.F.Size()),
		f(reachFrac),
		durUS(denseT),
		durUS(sparseT),
		f(speedup(denseT, sparseT)),
	}
	return row, []string{label, f(maxDiff)}, nil
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
