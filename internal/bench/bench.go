// Package bench is the experiment harness: one entry point per table
// or figure of the paper's evaluation (§6–§7), each regenerating the
// corresponding data series on the simulated datasets. The harness is
// shared by cmd/cludebench (human-readable tables) and the repository's
// Go benchmarks.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Scale selects dataset sizes. Small finishes in seconds (tests, go
// test -bench); Medium is the cmd/cludebench default and takes a few
// minutes; Paper approaches the paper's dimensions and is only
// practical on a beefy machine with patience.
type Scale string

// The predefined scales.
const (
	Tiny   Scale = "tiny" // seconds per experiment; used by go test -bench
	Small  Scale = "small"
	Medium Scale = "medium"
	Paper  Scale = "paper"
)

// Datasets bundles the generator configurations for one scale.
type Datasets struct {
	Wiki      gen.WikiConfig
	DBLP      gen.DBLPConfig
	Synthetic gen.SyntheticConfig
	Patent    gen.PatentConfig
	// Alphas is the similarity-threshold sweep of Figures 6–8;
	// Betas the quality-requirement sweep of Figure 10; DeltaEs the
	// edge-churn sweep of Figure 9.
	Alphas  []float64
	Betas   []float64
	DeltaEs []int
	Damping float64
	// Workers is the engine pool size every experiment passes to
	// core.Options. The default 1 keeps the timing experiments
	// paper-faithful (the paper's prototype is sequential); the
	// dedicated "parallel" experiment sweeps pool sizes regardless.
	Workers int
}

// DatasetsFor returns the generator configurations for a scale.
func DatasetsFor(s Scale) (Datasets, error) {
	d := Datasets{
		Alphas:  []float64{0.90, 0.92, 0.94, 0.96, 0.98, 0.99},
		Betas:   []float64{0.02, 0.05, 0.10, 0.15, 0.20, 0.30},
		Damping: 0.85,
		Workers: 1,
	}
	switch s {
	case Tiny:
		d.Wiki = gen.WikiConfig{N: 150, T: 10, InitialEdges: 420, FinalEdges: 465, ChurnFrac: 0.25, EventRate: 0.05, Seed: 7}
		d.DBLP = gen.DBLPConfig{N: 150, T: 10, Communities: 3, InitialPapers: 130, PapersPerDay: 1, MaxCoauthors: 4, CrossCommunity: 0.05, Seed: 11}
		d.Synthetic = gen.SyntheticConfig{V: 150, EP: 1350, D: 5, K: 4, DeltaE: 5, T: 10, Seed: 1}
		d.Patent = gen.PatentConfig{Companies: gen.DefaultPatentConfig().Companies, RisingCompany: 2, PatentsPerYear: 4, Years: 8, CitesPerPatent: 5, SelfCiteProb: 0.4, Seed: 17}
		d.Alphas = []float64{0.9, 0.97}
		d.Betas = []float64{0.05, 0.2}
		d.DeltaEs = []int{5, 10}
	case Small:
		d.Wiki = gen.WikiConfig{N: 600, T: 80, InitialEdges: 1700, FinalEdges: 3000, ChurnFrac: 0.25, EventRate: 0.05, Seed: 7}
		d.DBLP = gen.DBLPConfig{N: 600, T: 80, Communities: 3, InitialPapers: 500, PapersPerDay: 2, MaxCoauthors: 4, CrossCommunity: 0.05, Seed: 11}
		d.Synthetic = gen.SyntheticConfig{V: 600, EP: 5400, D: 5, K: 4, DeltaE: 10, T: 60, Seed: 1}
		d.Patent = gen.PatentConfig{Companies: gen.DefaultPatentConfig().Companies, RisingCompany: 2, PatentsPerYear: 6, Years: 21, CitesPerPatent: 5, SelfCiteProb: 0.4, Seed: 17}
		d.DeltaEs = []int{5, 10, 15, 20, 25}
	case Medium:
		d.Wiki = gen.DefaultWikiConfig()
		d.DBLP = gen.DefaultDBLPConfig()
		d.Synthetic = gen.DefaultSyntheticConfig()
		d.Patent = gen.DefaultPatentConfig()
		d.DeltaEs = []int{8, 16, 24, 32, 40}
	case Paper:
		d.Wiki = gen.WikiConfig{N: 20000, T: 1000, InitialEdges: 56181, FinalEdges: 138072, ChurnFrac: 0.25, EventRate: 0.02, Seed: 7}
		d.DBLP = gen.DBLPConfig{N: 97931, T: 1000, Communities: 3, InitialPapers: 130000, PapersPerDay: 55, MaxCoauthors: 4, CrossCommunity: 0.05, Seed: 11}
		d.Synthetic = gen.SyntheticConfig{V: 50000, EP: 450000, D: 5, K: 4, DeltaE: 500, T: 500, Seed: 1}
		d.Patent = gen.PatentConfig{Companies: gen.DefaultPatentConfig().Companies, RisingCompany: 2, PatentsPerYear: 600, Years: 21, CitesPerPatent: 6, SelfCiteProb: 0.4, Seed: 17}
		d.DeltaEs = []int{300, 400, 500, 600, 700}
	default:
		return d, fmt.Errorf("bench: unknown scale %q", s)
	}
	return d, nil
}

// Table is a printable result: the rows a figure plots or a table
// lists. The JSON tags define the schema of the BENCH_*.json CI
// artifacts (see json.go).
type Table struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// f formats a float compactly for table cells.
func f(v float64) string { return fmt.Sprintf("%.4g", v) }

// dur formats a duration in milliseconds for table cells.
func dur(d time.Duration) string { return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000) }

// wikiEMS generates the Wikipedia-like EMS (directed RWR matrices).
func wikiEMS(d Datasets) (*graph.EGS, *graph.EMS, error) {
	egs, err := gen.WikiSim(d.Wiki)
	if err != nil {
		return nil, nil, err
	}
	return egs, graph.DeriveEMS(egs, graph.RWRMatrix(d.Damping)), nil
}

// dblpEMS generates the DBLP-like EMS (symmetric matrices).
func dblpEMS(d Datasets) (*graph.EGS, *graph.EMS, error) {
	egs, err := gen.DBLPSim(d.DBLP)
	if err != nil {
		return nil, nil, err
	}
	return egs, graph.DeriveEMS(egs, graph.SymmetricWalkMatrix(d.Damping)), nil
}
