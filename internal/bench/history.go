package bench

import (
	"fmt"
	"time"

	"repro/internal/bennett"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/xrand"
)

// History measures the delta-compressed version history (serve
// Config.HistoryBase) against the clone-per-checkpoint retention it
// replaces, on both sides of its trade:
//
//   - resident bytes: full clones at every version (the old
//     CheckpointEvery(1) path) vs. base clones + the Bennett delta log
//     at several base spacings — the memory the feature exists to save;
//   - materialization latency vs. replay depth: what a query for a
//     non-resident version pays to clone its base and replay the
//     recorded rank-1 terms — the latency the savings cost.
//
// The workload is a CLUDE stream over an edge-toggle event sequence
// (events drawn from the initial edge set), which keeps the pattern
// inside the cluster union so versions are Bennett deltas rather than
// structural rebuilds — the regime delta chains compress.
func History(d Datasets) ([]*Table, error) {
	n := d.Wiki.N
	T := d.Wiki.T
	rng := xrand.New(7)
	es := make([]graph.Edge, 0, d.Wiki.InitialEdges)
	for k := 0; k < d.Wiki.InitialEdges; k++ {
		es = append(es, graph.Edge{From: rng.Intn(n), To: rng.Intn(n)})
	}

	// One streamed run, recording per-version sizes and delta records;
	// clones are retained only at potential bases (every 8th version
	// plus structural ones) so the harness itself does not pay
	// clone-per-version memory at larger scales.
	const cloneEvery = 8
	log := bennett.NewHistoryLog()
	var (
		recs       []bennett.VersionRecord
		sizes      []int64
		bases      = map[uint64]lu.Factors{}
		structural int
	)
	stream, err := core.NewStream(core.StreamConfig{
		Algorithm: core.CLUDE, Alpha: 0.95,
		Initial: graph.New(n, true, es),
		Derive:  graph.RWRMatrix(d.Damping),
		OnHistory: func(s *lu.Solver, rec bennett.VersionRecord) {
			log.Record(rec)
			recs = append(recs, rec)
			sizes = append(sizes, lu.MemBytes(s.F))
			if rec.Structural {
				structural++
			}
			if rec.Structural || rec.Version%cloneEvery == 0 {
				bases[rec.Version] = s.Clone().F
			}
		},
	})
	if err != nil {
		return nil, err
	}
	defer stream.Close()
	for b := 0; b < T; b++ {
		evs := make([]graph.EdgeEvent, 8)
		for k := range evs {
			e := es[rng.Intn(len(es))]
			op := graph.EdgeDelete
			if rng.Intn(2) == 0 {
				op = graph.EdgeInsert
			}
			evs[k] = graph.EdgeEvent{From: e.From, To: e.To, Op: op}
		}
		if _, err := stream.Apply(evs); err != nil {
			return nil, err
		}
	}

	var cloneBytes, logBytes int64
	for i, rec := range recs {
		cloneBytes += sizes[i]
		logBytes += bennett.RecordBytes(rec)
	}
	mb := func(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<20)) }

	residents := &Table{
		Title:  fmt.Sprintf("Delta-compressed history: resident bytes vs base spacing (%d versions, %d structural)", len(recs), structural),
		Header: []string{"spacing", "bases", "base MB", "log MB", "total MB", "reduction"},
		Rows: [][]string{{
			"1 (clone/ckpt)", fmt.Sprint(len(recs)), mb(cloneBytes), "0.00", mb(cloneBytes), "1.0x",
		}},
	}
	for _, spacing := range []uint64{8, 16, 32} {
		if spacing >= uint64(len(recs)) {
			continue
		}
		var baseBytes int64
		nBases := 0
		for i, rec := range recs {
			if rec.Structural || rec.Version%spacing == 0 {
				baseBytes += sizes[i]
				nBases++
			}
		}
		total := baseBytes + logBytes
		residents.Rows = append(residents.Rows, []string{
			fmt.Sprint(spacing), fmt.Sprint(nBases), mb(baseBytes), mb(logBytes), mb(total),
			fmt.Sprintf("%.1fx", float64(cloneBytes)/float64(total)),
		})
	}

	// Latency side: replay from the retained base with the longest
	// following run of non-structural records, at doubling depths. The
	// depth-0 row is the clone alone — the irreducible cost a resident
	// hit avoids and every materialization starts with.
	baseVer, runLen := uint64(0), 0
	for v := range bases {
		l := 0
		for _, rec := range recs {
			if rec.Version <= v {
				continue
			}
			if rec.Version != v+uint64(l)+1 || rec.Structural {
				break
			}
			l++
		}
		if l > runLen {
			baseVer, runLen = v, l
		}
	}
	latency := &Table{
		Title:  fmt.Sprintf("Delta-compressed history: materialization latency vs replay depth (base=v%d)", baseVer),
		Header: []string{"depth", "materialize", "per version"},
	}
	if runLen > 0 {
		base := bases[baseVer]
		var mw bennett.MaterializeWorkspace
		var dst lu.Factors
		for _, depth := range []int{0, 1, 2, 4, 8, 16, 32, 64} {
			if depth > runLen {
				break
			}
			target := baseVer + uint64(depth)
			// Warm once (allocates the workspace), then time.
			f, err := mw.MaterializeInto(dst, base, log, baseVer, target, nil)
			if err != nil {
				return nil, fmt.Errorf("bench: history depth %d: %w", depth, err)
			}
			dst = f
			reps := 0
			t0 := time.Now()
			for time.Since(t0) < 30*time.Millisecond || reps < 5 {
				if dst, err = mw.MaterializeInto(dst, base, log, baseVer, target, nil); err != nil {
					return nil, err
				}
				reps++
			}
			per := time.Since(t0) / time.Duration(reps)
			perVersion := "-"
			if depth > 0 {
				perVersion = dur(per / time.Duration(depth))
			}
			latency.Rows = append(latency.Rows, []string{fmt.Sprint(depth), dur(per), perVersion})
		}
	}
	if len(latency.Rows) == 0 {
		latency.Rows = append(latency.Rows, []string{"0", "-", "-"})
	}
	return []*Table{residents, latency}, nil
}
