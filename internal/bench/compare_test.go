package bench

import (
	"strings"
	"testing"
)

// TestCompareReports builds two synthetic reports and checks the diff
// output pairs runs/tables/rows correctly and annotates numeric deltas.
func TestCompareReports(t *testing.T) {
	old := &Report{CreatedAt: "old", GoVersion: "go1.x", Runs: []RunResult{{
		Experiment: "history", Scale: "small", ElapsedMS: 100,
		Tables: []*Table{{
			Title:  "resident bytes vs base spacing (81 versions, 13 structural)",
			Header: []string{"spacing", "total MB", "reduction"},
			Rows: [][]string{
				{"1 (clone/ckpt)", "40.00", "1.0x"},
				{"8", "10.00", "4.0x"},
			},
		}},
	}}}
	cur := &Report{CreatedAt: "new", GoVersion: "go1.x", Runs: []RunResult{{
		Experiment: "history", Scale: "small", ElapsedMS: 110,
		Tables: []*Table{{
			// Different embedded counts: must still pair via titleKey.
			Title:  "resident bytes vs base spacing (83 versions, 12 structural)",
			Header: []string{"spacing", "total MB", "reduction"},
			Rows: [][]string{
				{"1 (clone/ckpt)", "40.00", "1.0x"},
				{"8", "8.00", "5.0x"},
				{"16", "6.00", "6.7x"},
			},
		}},
	}, {
		Experiment: "brandnew", Scale: "small",
		Tables: []*Table{{Title: "only in current"}},
	}}}

	var sb strings.Builder
	if matched := Compare(old, cur, &sb); matched != 1 {
		t.Fatalf("matched %d tables, want 1", matched)
	}
	out := sb.String()
	for _, want := range []string{
		"## history/small",
		"10.00→8.00 (-20.0%)", // numeric delta with percent
		"4.0x→5.0x (+25.0%)",  // unit suffix tolerated
		"16: new row",
		"brandnew/small: not in baseline",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q\n%s", want, out)
		}
	}
	// Identical cells collapse to the bare value, no arrow.
	if strings.Contains(out, "40.00→40.00") {
		t.Errorf("unchanged cell rendered as a delta\n%s", out)
	}
}

// TestParseCell covers the cell-number extraction edge cases.
func TestParseCell(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"4.1x", 4.1, true},
		{"0.25ms", 0.25, true},
		{"-3", -3, true},
		{"1 (clone/ckpt)", 1, true},
		{"-", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, ok := parseCell(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("parseCell(%q) = %v,%v want %v,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}
