package bench

import (
	"fmt"
	"math"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/xrand"
)

// Supernodal measures the panel-packed blocked substitution
// (lu.PanelSet.SolveBlockInPlace) against the scalar column-by-column
// path (lu.StaticFactors.SolveBlockInPlace) — the serving layer's
// blocked-group hot path. Both are timed on the permuted factors
// directly, so the numbers isolate pure substitution: no permutation,
// no cache, no admission pipeline.
//
// Four sweeps on the DBLP-like generator plus a checksum:
//
//  1. Community count at a fixed block width (k = 8 RHS): community
//     structure concentrates each community's elimination tail into
//     runs of near-identical column patterns, which is where panels
//     get their width — and the packed dense blocks their
//     cache-locality win over the pointer-chase.
//  2. RHS count at a fixed structure: the dense rank-panel update
//     amortizes the panel gather over k right-hand sides, so the
//     speedup must grow with k (the acceptance gate is >= 2x at
//     k >= 8).
//  3. Relaxation 0–4: each tolerated structure mismatch widens panels
//     (fewer, denser blocks) at the price of packed explicit zeros —
//     the fill-vs-width trade the relax knob exists for.
//  4. The panel width histogram of the default build, the shape behind
//     the mean-width heuristic (serve.Config.PanelMinWidth).
//
// The checksum table holds every panel answer bit-identical to the
// scalar path (max |panel − scalar| must be 0): routing is purely an
// execution-schedule decision.
func Supernodal(d Datasets) ([]*Table, error) {
	const kFixed = 8
	scfg := supernodalConfig(d)
	structure := &Table{
		Title: fmt.Sprintf("Blocked substitution: panel vs scalar vs community count (DBLP-like, n=%d, k=%d RHS, relax=%d)",
			scfg.N, kFixed, lu.DefaultPanelRelax),
		Header: []string{"communities", "fill |L+U+D|", "panels", "mean w", "max w", "cols w>=2",
			"pack fill frac", "scalar/block", "panel/block", "speedup"},
	}
	rhsSweep := &Table{
		Title: fmt.Sprintf("Panel speedup vs RHS count (DBLP-like, n=%d, %d communities, relax=%d; acceptance: >= 2x at k >= 8)",
			scfg.N, scfg.Communities, lu.DefaultPanelRelax),
		Header: []string{"rhs k", "scalar/block", "panel/block", "speedup"},
	}
	relaxSweep := &Table{
		Title: fmt.Sprintf("Relaxation sweep (DBLP-like, n=%d, %d communities, k=%d): panel width vs packed fill vs speedup",
			scfg.N, scfg.Communities, kFixed),
		Header: []string{"relax", "panels", "mean w", "max w", "pack fill frac", "pack time", "speedup"},
	}
	hist := &Table{
		Title:  fmt.Sprintf("Panel width histogram (default build, relax=%d)", lu.DefaultPanelRelax),
		Header: []string{"width", "panels"},
	}
	verify := &Table{
		Title:  "Panel-path checksum (max |panel - scalar| over every RHS; must be 0)",
		Header: []string{"config", "max abs diff"},
	}

	// Sweep 1: community structure at fixed k.
	for _, comm := range []int{1, 2, 4, 8} {
		cfg := scfg
		cfg.Communities = comm
		sf, err := supernodalFactors(d, cfg)
		if err != nil {
			return nil, err
		}
		ps := lu.NewPanelSet(sf, lu.DefaultPanelRelax, 0)
		scalarT, panelT, diff := panelVsScalar(sf, ps, kFixed)
		structure.Rows = append(structure.Rows, []string{
			fmt.Sprint(comm),
			fmt.Sprint(sf.Size()),
			fmt.Sprint(ps.NumPanels()),
			f2(ps.MeanWidth()),
			fmt.Sprint(ps.MaxWidth()),
			fmt.Sprint(ps.ColsCovered()),
			f(ps.FillFrac()),
			durUS(scalarT),
			durUS(panelT),
			f2(speedup(scalarT, panelT)) + "x",
		})
		verify.Rows = append(verify.Rows, []string{fmt.Sprintf("comm=%d k=%d", comm, kFixed), f(diff)})
	}

	// Sweeps 2–4 share the default-structure factors.
	f0, err := supernodalFactors(d, scfg)
	if err != nil {
		return nil, err
	}
	ps0 := lu.NewPanelSet(f0, lu.DefaultPanelRelax, 0)
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		scalarT, panelT, diff := panelVsScalar(f0, ps0, k)
		rhsSweep.Rows = append(rhsSweep.Rows, []string{
			fmt.Sprint(k),
			durUS(scalarT),
			durUS(panelT),
			f2(speedup(scalarT, panelT)) + "x",
		})
		verify.Rows = append(verify.Rows, []string{fmt.Sprintf("default k=%d", k), f(diff)})
	}

	for relax := 0; relax <= 4; relax++ {
		ps := lu.NewPanelSet(f0, relax, 0)
		scalarT, panelT, diff := panelVsScalar(f0, ps, kFixed)
		relaxSweep.Rows = append(relaxSweep.Rows, []string{
			fmt.Sprint(relax),
			fmt.Sprint(ps.NumPanels()),
			f2(ps.MeanWidth()),
			fmt.Sprint(ps.MaxWidth()),
			f(ps.FillFrac()),
			durUS(ps.PackTime()),
			f2(speedup(scalarT, panelT)) + "x",
		})
		verify.Rows = append(verify.Rows, []string{fmt.Sprintf("relax=%d k=%d", relax, kFixed), f(diff)})
	}

	for w, count := range ps0.WidthHistogram() {
		if count > 0 {
			hist.Rows = append(hist.Rows, []string{fmt.Sprint(w), fmt.Sprint(count)})
		}
	}

	return []*Table{structure, rhsSweep, relaxSweep, hist, verify}, nil
}

// supernodalConfig is the generator regime the supernodal sweeps run
// on: the scale's DBLP shape with larger coauthor cliques and more
// papers per day. Coauthor cliques are precisely what creates
// supernodes — each paper's author set becomes a dense block in the
// walk matrix, and overlapping cliques merge into wide elimination
// tails — so the panel path is measured on the structure it exists
// for. The sparse-clique regime is still covered: the community sweep
// spans structure from none (1 community) to fragmented (8).
func supernodalConfig(d Datasets) gen.DBLPConfig {
	cfg := d.DBLP
	cfg.PapersPerDay = 4
	cfg.MaxCoauthors = 7
	// Two communities: each elimination tail then spans ~n/2 columns,
	// the widest supernodes the generator produces. The community
	// sweep above still covers the full range (1, fragmented 8), so
	// this choice is the deep-dive regime, not a hidden assumption.
	cfg.Communities = 2
	return cfg
}

// supernodalFactors factorizes the last snapshot of one DBLP generator
// configuration under the Markowitz ordering and returns the static
// container the panel layer packs.
func supernodalFactors(d Datasets, cfg gen.DBLPConfig) (*lu.StaticFactors, error) {
	egs, err := gen.DBLPSim(cfg)
	if err != nil {
		return nil, err
	}
	ems := graph.DeriveEMS(egs, graph.SymmetricWalkMatrix(d.Damping))
	a := ems.Matrices[ems.Len()-1]
	solver, err := lu.FactorizeOrdered(a, orderOf(a))
	if err != nil {
		return nil, err
	}
	f, ok := solver.F.(*lu.StaticFactors)
	if !ok {
		return nil, fmt.Errorf("bench: supernodal expects StaticFactors, got %T", solver.F)
	}
	return f, nil
}

// panelVsScalar times one blocked substitution of k right-hand sides
// through the scalar and the packed path on the same inputs, returning
// the per-block times and the max absolute answer difference (bit
// identity makes it exactly 0). RHS vectors are the serving shape:
// single-entry restarts at spread-out sources.
func panelVsScalar(f *lu.StaticFactors, ps *lu.PanelSet, k int) (scalarT, panelT time.Duration, maxDiff float64) {
	n := f.Dim()
	rng := xrand.New(177)
	rhs := make([][]float64, k)
	for r := range rhs {
		rhs[r] = make([]float64, n)
		rhs[r][rng.Intn(n)] = 0.15
	}
	work := make([][]float64, k)
	for r := range work {
		work[r] = make([]float64, n)
	}
	reset := func() {
		for r := range work {
			copy(work[r], rhs[r])
		}
	}
	// Repetitions sized so each timed side does >= ~80 solves of work.
	// The two sides run as interleaved rounds and each keeps its best
	// round: substitution at this scale is microseconds per block, so
	// a single run is at the mercy of the scheduler, the minimum is
	// the standard robust estimate of a kernel's true cost, and
	// interleaving keeps a mid-measurement clock or load shift from
	// skewing the ratio (both sides sample the same conditions).
	reps := maxInt(10, 640/k)
	var ws lu.BlockWorkspace

	reset()
	f.SolveBlockInPlace(work) // warm caches and page in the factors
	reset()
	ps.SolveBlockInPlace(work, &ws)
	scalarT, panelT = math.MaxInt64, math.MaxInt64
	for round := 0; round < 7; round++ {
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			reset()
			f.SolveBlockInPlace(work)
		}
		if d := time.Since(t0); d < scalarT {
			scalarT = d
		}
		t1 := time.Now()
		for i := 0; i < reps; i++ {
			reset()
			ps.SolveBlockInPlace(work, &ws)
		}
		if d := time.Since(t1); d < panelT {
			panelT = d
		}
	}
	scalarT /= time.Duration(reps)
	panelT /= time.Duration(reps)

	// The last timed loop above was the panel side; rerun the scalar
	// side to capture its answers for the checksum.
	reset()
	f.SolveBlockInPlace(work)
	scalarOut := make([][]float64, k)
	for r := range work {
		scalarOut[r] = append([]float64(nil), work[r]...)
	}

	reset()
	ps.SolveBlockInPlace(work, &ws)

	for r := range work {
		for i, v := range work[r] {
			if d := math.Abs(v - scalarOut[r][i]); d > maxDiff {
				maxDiff = d
			}
		}
	}
	return scalarT, panelT, maxDiff
}

// f2 renders a float with two decimals (panel widths and speedups read
// better coarse).
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
