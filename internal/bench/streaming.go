package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/serve"
	"repro/internal/xrand"
)

// Streaming measures the live edge-delta pipeline the paper motivates
// but never benchmarks: sustained update throughput against concurrent
// query latency as the ingest batch size varies, plus the publish-path
// allocation profile — the evidence that hot-publishing a version costs
// zero full-factor copies, against the RetainFactors clone baseline it
// replaced.
func Streaming(d Datasets) ([]*Table, error) {
	egs, err := gen.Synthetic(d.Synthetic)
	if err != nil {
		return nil, err
	}
	deriver := graph.RWRMatrix(d.Damping)
	initial := egs.Snapshots[0]
	// The full event stream, regrouped per batch-size setting below.
	var events []graph.EdgeEvent
	for _, b := range graph.DeltaBatches(egs) {
		events = append(events, b...)
	}

	throughput, err := streamingThroughput(initial, deriver, events, d)
	if err != nil {
		return nil, err
	}
	publish, err := streamingPublishCost(egs, initial, deriver, d)
	if err != nil {
		return nil, err
	}
	return []*Table{throughput, publish}, nil
}

// streamingThroughput ingests the event stream at several batch sizes
// while query workers hammer the live head, reporting both sides of the
// read/write contention the hot-publish lock mediates.
func streamingThroughput(initial *graph.Graph, deriver graph.Deriver, events []graph.EdgeEvent, d Datasets) (*Table, error) {
	tbl := &Table{
		Title: fmt.Sprintf("Streaming ingest vs concurrent query latency (CLUDE, n=%d, %d events, GOMAXPROCS=%d)",
			initial.N(), len(events), runtime.GOMAXPROCS(0)),
		Header: []string{"batch size", "batches", "ingest wall", "events/s", "queries", "mean lat", "rebuilds"},
	}
	for _, bs := range []int{8, 32, 128} {
		stream, err := core.NewStream(core.StreamConfig{
			Algorithm: core.CLUDE, Alpha: 0.95, Initial: initial, Derive: deriver,
		})
		if err != nil {
			return nil, err
		}
		eng := serve.New(serve.Config{Workers: 2, CacheSize: 256, Damping: d.Damping})
		eng.AttachLive(stream)

		const clients = 2
		stop := make(chan struct{})
		var wg sync.WaitGroup
		var queries atomic.Int64
		var latNS atomic.Int64
		var qerr atomic.Value
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				rng := xrand.New(seed)
				ctx := context.Background()
				for {
					select {
					case <-stop:
						return
					default:
					}
					q := serve.Query{Snapshot: -1, Measure: serve.MeasureRWR, Source: rng.Intn(initial.N())}
					t0 := time.Now()
					if _, err := eng.Query(ctx, q); err != nil {
						qerr.Store(err)
						return
					}
					latNS.Add(time.Since(t0).Nanoseconds())
					queries.Add(1)
				}
			}(uint64(1000 + c))
		}

		batches := 0
		t0 := time.Now()
		for at := 0; at < len(events); at += bs {
			end := minInt(at+bs, len(events))
			if _, err := stream.Apply(events[at:end]); err != nil {
				return nil, err
			}
			batches++
		}
		wall := time.Since(t0)
		// On a short ingest the clients may not have been scheduled yet;
		// give them a moment so the latency column is populated (those
		// trailing queries run against the final version, which is fine —
		// the column reports live-head query latency, not contention).
		for w := 0; w < 100 && queries.Load() < clients; w++ {
			time.Sleep(time.Millisecond)
		}
		close(stop)
		wg.Wait()
		st := stream.Stats()
		eng.Close()
		stream.Close()
		if err, ok := qerr.Load().(error); ok {
			return nil, fmt.Errorf("bench: streaming query: %w", err)
		}

		meanLat := "-"
		if q := queries.Load(); q > 0 {
			meanLat = durUS(time.Duration(latNS.Load() / q))
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(bs),
			fmt.Sprint(batches),
			dur(wall),
			f(float64(len(events)) / wall.Seconds()),
			fmt.Sprint(queries.Load()),
			meanLat,
			fmt.Sprint(st.Clusters - 1 + st.StructRebuilds),
		})
	}
	return tbl, nil
}

// streamingPublishCost isolates the per-version cost of making factors
// servable. For each strategy it runs the identical ingest three ways:
//
//   - hot: the streaming publish path as shipped — a version bump under
//     the write lock, zero factor copies;
//   - clone-publish: the same stream with a deep clone per publish (what
//     the publish path would cost if it still copied like RetainFactors);
//   - retain: the offline pipeline with RetainFactors, for reference.
//
// "copy removed" = clone-publish − hot is exactly the per-version deep
// copy the hot-publish refactor eliminated; "hot" matching the
// copy-free profile (allocs_per_op/bytes_per_op) is the zero-copy
// assertion the CI artifact tracks.
func streamingPublishCost(egs *graph.EGS, initial *graph.Graph, deriver graph.Deriver, d Datasets) (*Table, error) {
	batches := graph.DeltaBatches(egs)
	ems := graph.DeriveEMS(egs, deriver)
	tbl := &Table{
		Title: fmt.Sprintf("Publish path per version: hot-publish vs clone-per-publish vs offline RetainFactors (T=%d, n=%d)",
			egs.Len(), egs.N()),
		Header: []string{"alg", "hot allocs", "hot KB", "clone-pub allocs", "clone-pub KB", "copy removed KB", "retain KB"},
	}
	ingest := func(alg core.Algorithm, onPublish func(uint64, *lu.Solver)) (uint64, uint64, error) {
		published := 0
		allocs, bytes, err := measureAllocs(func() error {
			stream, err := core.NewStream(core.StreamConfig{
				Algorithm: alg, Alpha: 0.95, Initial: initial, Derive: deriver,
				OnPublish: func(v uint64, s *lu.Solver) {
					published++
					if onPublish != nil {
						onPublish(v, s)
					}
				},
			})
			if err != nil {
				return err
			}
			defer stream.Close()
			for _, b := range batches {
				if _, err := stream.Apply(b); err != nil {
					return err
				}
			}
			return nil
		})
		if err == nil && published != egs.Len() {
			err = fmt.Errorf("bench: %s published %d versions, want %d", alg, published, egs.Len())
		}
		return allocs, bytes, err
	}
	for _, alg := range []core.Algorithm{core.INC, core.CINC, core.CLUDE} {
		hotAllocs, hotBytes, err := ingest(alg, nil)
		if err != nil {
			return nil, err
		}
		var sink lu.Factors
		cloneAllocs, cloneBytes, err := ingest(alg, func(_ uint64, s *lu.Solver) { sink = s.F.Clone() })
		if err != nil {
			return nil, err
		}
		_ = sink

		retainOpts := core.Options{Alpha: 0.95, Workers: 1, RetainFactors: true, OnFactors: func(int, *lu.Solver) {}}
		_, retainBytes, err := measureAllocs(func() error {
			_, err := core.Run(ems, alg, retainOpts)
			return err
		})
		if err != nil {
			return nil, err
		}

		T := float64(egs.Len())
		tbl.Rows = append(tbl.Rows, []string{
			string(alg),
			f(float64(hotAllocs) / T),
			f(float64(hotBytes) / T / 1024),
			f(float64(cloneAllocs) / T),
			f(float64(cloneBytes) / T / 1024),
			f(float64(int64(cloneBytes)-int64(hotBytes)) / T / 1024),
			f(float64(retainBytes) / T / 1024),
		})
	}
	return tbl, nil
}

// measureAllocs runs f on a quiesced heap and returns the allocation
// deltas it caused (same technique as RunMeasured, scoped to one phase).
func measureAllocs(f func() error) (allocs, bytes uint64, err error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	err = f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc, err
}
