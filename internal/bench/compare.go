package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Report comparison: the per-PR half of the BENCH_*.json story. Two
// artifacts — a committed baseline and the current run — are matched
// run by run (experiment + scale), table by table (title), and row by
// row (first cell), and every numeric cell is printed as old → new
// with a signed percentage. The output is informational: machines
// differ, so the CI step prints deltas instead of failing on them, and
// a human decides whether a +40% materialization latency is a
// regression or a runner artifact.

// ReadReport loads a BENCH_*.json artifact.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &r, nil
}

// Compare renders the per-table deltas between two reports. It returns
// the number of matched tables (zero means the artifacts share no
// comparable content, which callers may want to flag).
func Compare(old, cur *Report, w io.Writer) int {
	fmt.Fprintf(w, "baseline: %s (%s)\ncurrent:  %s (%s)\n",
		old.CreatedAt, old.GoVersion, cur.CreatedAt, cur.GoVersion)
	matched := 0
	for _, cr := range cur.Runs {
		or, ok := findRun(old, cr.Experiment, cr.Scale)
		if !ok {
			fmt.Fprintf(w, "\n## %s/%s: not in baseline (new experiment)\n", cr.Experiment, cr.Scale)
			continue
		}
		fmt.Fprintf(w, "\n## %s/%s  elapsed %s  allocs %s\n", cr.Experiment, cr.Scale,
			deltaCell(fmt.Sprintf("%.1fms", or.ElapsedMS), fmt.Sprintf("%.1fms", cr.ElapsedMS)),
			deltaCell(fmt.Sprint(or.AllocsPerOp), fmt.Sprint(cr.AllocsPerOp)))
		for _, ct := range cr.Tables {
			ot := findTable(or.Tables, ct.Title)
			if ot == nil {
				fmt.Fprintf(w, "  + table %q (new)\n", ct.Title)
				continue
			}
			matched++
			fmt.Fprintf(w, "  == %s ==\n", ct.Title)
			for _, crow := range ct.Rows {
				if len(crow) == 0 {
					continue
				}
				orow := findRow(ot.Rows, crow[0])
				if orow == nil {
					fmt.Fprintf(w, "    %s: new row\n", crow[0])
					continue
				}
				cells := make([]string, 0, len(crow)-1)
				for i := 1; i < len(crow) && i < len(orow); i++ {
					cells = append(cells, deltaCell(orow[i], crow[i]))
				}
				fmt.Fprintf(w, "    %-16s %s\n", crow[0], strings.Join(cells, "  "))
			}
		}
	}
	return matched
}

func findRun(r *Report, exp, scale string) (RunResult, bool) {
	for _, run := range r.Runs {
		if run.Experiment == exp && run.Scale == scale {
			return run, true
		}
	}
	return RunResult{}, false
}

func findTable(ts []*Table, title string) *Table {
	for _, t := range ts {
		if t.Title == title {
			return t
		}
	}
	// Titles may embed run-dependent numbers (version counts, base
	// ids); fall back to the longest shared prefix up to the first
	// digit so such tables still pair up.
	want := titleKey(title)
	for _, t := range ts {
		if titleKey(t.Title) == want {
			return t
		}
	}
	return nil
}

// titleKey strips a title at its first digit, normalizing titles that
// embed run-dependent counts.
func titleKey(s string) string {
	for i, r := range s {
		if r >= '0' && r <= '9' {
			return s[:i]
		}
	}
	return s
}

func findRow(rows [][]string, key string) []string {
	for _, r := range rows {
		if len(r) > 0 && r[0] == key {
			return r
		}
	}
	return nil
}

// deltaCell renders old → new, with a signed percentage when both
// parse as numbers (unit suffixes like ms/x/MB tolerated) and the
// baseline is nonzero. Equal cells collapse to the value alone.
func deltaCell(old, cur string) string {
	if old == cur {
		return cur
	}
	ov, ook := parseCell(old)
	cv, cok := parseCell(cur)
	if ook && cok && ov != 0 {
		return fmt.Sprintf("%s→%s (%+.1f%%)", old, cur, 100*(cv-ov)/ov)
	}
	return fmt.Sprintf("%s→%s", old, cur)
}

// parseCell extracts the leading number from a table cell, tolerating
// the harness's unit suffixes.
func parseCell(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	end := 0
	for end < len(s) && (s[end] == '-' || s[end] == '+' || s[end] == '.' || (s[end] >= '0' && s[end] <= '9') || s[end] == 'e') {
		end++
	}
	if end == 0 {
		return 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(s[:end], "e"), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
