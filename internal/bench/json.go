package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"
)

// This file is the machine-readable side of the harness: the same
// tables Fprint renders for humans, persisted as JSON so CI can upload
// them as artifacts and the perf trajectory accumulates per PR.

// RunResult is one experiment's outcome in a Report. AllocsPerOp and
// BytesPerOp are the heap-allocation deltas of one experiment
// execution (see RunMeasured), so the per-PR artifacts carry the
// allocation trajectory next to the timing one.
type RunResult struct {
	Experiment  string   `json:"experiment"`
	Paper       string   `json:"paper,omitempty"`
	Scale       string   `json:"scale"`
	Workers     int      `json:"workers,omitempty"`
	ElapsedMS   float64  `json:"elapsed_ms,omitempty"`
	AllocsPerOp uint64   `json:"allocs_per_op,omitempty"`
	BytesPerOp  uint64   `json:"bytes_per_op,omitempty"`
	Tables      []*Table `json:"tables"`
}

// Report is the top-level JSON document WriteJSON persists.
type Report struct {
	CreatedAt  string      `json:"created_at"`
	GoVersion  string      `json:"go_version"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Runs       []RunResult `json:"runs"`
}

// NewReport stamps an empty report with the environment.
func NewReport() *Report {
	return &Report{
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Add appends one experiment's tables to the report. allocs and bytes
// are the run's heap-allocation deltas (0 when not measured).
func (r *Report) Add(e Experiment, scale Scale, workers int, elapsed time.Duration, allocs, bytes uint64, tables []*Table) {
	r.Runs = append(r.Runs, RunResult{
		Experiment:  e.ID,
		Paper:       e.Paper,
		Scale:       string(scale),
		Workers:     workers,
		ElapsedMS:   float64(elapsed.Microseconds()) / 1000,
		AllocsPerOp: allocs,
		BytesPerOp:  bytes,
		Tables:      tables,
	})
}

// RunMeasured executes one experiment while recording wall time and
// the goroutine-global heap-allocation deltas (objects and bytes) of
// the run — the numbers Add persists. A GC pass before the baseline
// read keeps the byte delta from charging the previous run's garbage.
func RunMeasured(e Experiment, d Datasets) (tables []*Table, elapsed time.Duration, allocs, bytes uint64, err error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	tables, err = e.Run(d)
	elapsed = time.Since(t0)
	runtime.ReadMemStats(&after)
	return tables, elapsed, after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc, err
}

// WriteJSON persists the report to path, creating any missing parent
// directories (a local `cludebench -json` or BENCH_JSON_DIR run must
// not require pre-creating the artifact directory), via a temp file +
// rename so a crashed writer never leaves a torn artifact for the CI
// upload step to grab.
func WriteJSON(path string, r *Report) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	return nil
}

// ArtifactPath names the per-experiment artifact file the CI bench job
// uploads: BENCH_<id>.json under dir.
func ArtifactPath(dir, id string) string {
	return filepath.Join(dir, "BENCH_"+id+".json")
}
