package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// workerSweep returns the pool sizes the parallel experiment measures:
// 1, 2, 4 and GOMAXPROCS, deduplicated and sorted.
func workerSweep() []int {
	set := map[int]bool{1: true, 2: true, 4: true, runtime.GOMAXPROCS(0): true}
	var out []int
	for w := range set {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// syntheticEMS generates the synthetic EMS (directed RWR matrices) —
// the sequence the scaling experiment and speedup test run on.
func syntheticEMS(d Datasets) (*graph.EMS, error) {
	egs, err := gen.Synthetic(d.Synthetic)
	if err != nil {
		return nil, err
	}
	return graph.DeriveEMS(egs, graph.RWRMatrix(d.Damping)), nil
}

// bestWall runs alg reps times at the given pool size and returns the
// fastest wall clock — the standard guard against scheduler noise in
// scaling measurements.
func bestWall(ems *graph.EMS, alg core.Algorithm, alpha float64, workers, reps int) (time.Duration, error) {
	best := time.Duration(0)
	for r := 0; r < reps; r++ {
		res, err := core.Run(ems, alg, core.Options{Alpha: alpha, Workers: workers})
		if err != nil {
			return 0, err
		}
		if r == 0 || res.Wall < best {
			best = res.Wall
		}
	}
	return best, nil
}

// CLUDESpeedup measures CLUDE's wall-clock speedup on the synthetic
// EMS with the given pool size relative to the sequential engine
// (Workers=1). Exposed for the scaling regression test.
func CLUDESpeedup(d Datasets, workers int) (float64, error) {
	ems, err := syntheticEMS(d)
	if err != nil {
		return 0, err
	}
	const alpha, reps = 0.95, 3
	seq, err := bestWall(ems, core.CLUDE, alpha, 1, reps)
	if err != nil {
		return 0, err
	}
	par, err := bestWall(ems, core.CLUDE, alpha, workers, reps)
	if err != nil {
		return 0, err
	}
	return speedup(seq, par), nil
}

// Parallel measures the engine's wall-clock scaling: BF, CINC and
// CLUDE on the synthetic EMS across worker-pool sizes. This experiment
// has no counterpart in the paper (its prototype is sequential); it
// documents what the cluster-parallel engine buys on a multi-core box.
// OnFactors is nil here, so the whole per-cluster pipeline — ordering,
// full LU and Bennett chain — runs concurrently across clusters.
func Parallel(d Datasets) ([]*Table, error) {
	ems, err := syntheticEMS(d)
	if err != nil {
		return nil, err
	}
	const alpha, reps = 0.95, 2
	algs := []core.Algorithm{core.BF, core.CINC, core.CLUDE}

	base := map[core.Algorithm]time.Duration{}
	tbl := &Table{
		Title: fmt.Sprintf("Engine wall-clock vs workers (synthetic, alpha=%.2f, GOMAXPROCS=%d)",
			alpha, runtime.GOMAXPROCS(0)),
		Header: []string{"workers", "BF", "CINC", "CLUDE", "BF speedup", "CINC speedup", "CLUDE speedup"},
	}
	for _, w := range workerSweep() {
		row := []string{fmt.Sprint(w)}
		var speeds []string
		for _, alg := range algs {
			wall, err := bestWall(ems, alg, alpha, w, reps)
			if err != nil {
				return nil, err
			}
			if w == 1 {
				base[alg] = wall
			}
			row = append(row, dur(wall))
			speeds = append(speeds, f(speedup(base[alg], wall)))
		}
		tbl.Rows = append(tbl.Rows, append(row, speeds...))
	}

	// How much cluster-level parallelism the plan even offers.
	res, err := core.Run(ems, core.CLUDE, core.Options{Alpha: alpha, Workers: 1})
	if err != nil {
		return nil, err
	}
	note := &Table{
		Title:  "Available cluster-level parallelism (CLUDE plan)",
		Header: []string{"T", "clusters", "largest cluster"},
	}
	largest := 0
	for _, c := range res.Clusters {
		if c.Len() > largest {
			largest = c.Len()
		}
	}
	note.Rows = append(note.Rows, []string{
		fmt.Sprint(ems.Len()), fmt.Sprint(len(res.Clusters)), fmt.Sprint(largest),
	})
	return []*Table{tbl, note}, nil
}
