package bench

import (
	"fmt"
	"time"

	"repro/internal/lu"
	"repro/internal/order"
	"repro/internal/sparse"
)

// Ablation quantifies the design choices DESIGN.md §6 calls out, on
// one representative Wiki snapshot matrix:
//
//   - ordering quality: Natural vs RCM vs MinDegree-flavoured
//     Markowitz, measured as |s̃p(A^O)| and full-LU wall time;
//   - the USSP slack: how much larger a cluster-wide static structure
//     is than the tight per-matrix structure.
func Ablation(d Datasets) ([]*Table, error) {
	_, ems, err := wikiEMS(d)
	if err != nil {
		return nil, err
	}
	a := ems.Matrices[ems.Len()/2]
	p := a.Pattern()

	type cand struct {
		name string
		res  order.Result
	}
	cands := []cand{
		{"natural", order.Natural(p)},
		{"RCM", order.RCM(p)},
		{"Markowitz", order.Markowitz(p)},
	}
	tbl := &Table{
		Title:  fmt.Sprintf("Ordering ablation on one Wiki matrix (n=%d, nnz=%d)", a.N(), a.NNZ()),
		Header: []string{"ordering", "|s̃p(A^O)|", "fill ratio", "full LU time"},
	}
	base := cands[0].res.SSPSize
	for _, c := range cands {
		t0 := time.Now()
		if _, err := lu.FactorizeOrdered(a, c.res.Ordering); err != nil {
			return nil, fmt.Errorf("bench: ablation %s: %w", c.name, err)
		}
		el := time.Since(t0)
		tbl.Rows = append(tbl.Rows, []string{
			c.name,
			fmt.Sprint(c.res.SSPSize),
			f(float64(c.res.SSPSize) / float64(base)),
			dur(el),
		})
	}

	// USSP slack: union structure of a whole α-cluster vs the tight
	// structure of its first member.
	pats := make([]*sparse.Pattern, ems.Len())
	for i, m := range ems.Matrices {
		pats[i] = m.Pattern()
	}
	union := pats[0]
	members := 1
	for i := 1; i < len(pats); i++ {
		cu := union.Union(pats[i])
		inter := pats[0]
		for k := 1; k <= i; k++ {
			inter = inter.Intersect(pats[k])
		}
		if sparse.MES(inter, cu) < 0.95 {
			break
		}
		union = cu
		members = i + 1
	}
	ord := order.Markowitz(union)
	ussp := lu.Symbolic(union.Permute(ord.Ordering)).Size()
	tight := lu.SymbolicSize(pats[0], ord.Ordering)
	slack := &Table{
		Title:  fmt.Sprintf("USSP slack for the first alpha=0.95 cluster (%d members)", members),
		Header: []string{"structure", "|s̃p|", "vs tight"},
		Rows: [][]string{
			{"tight (first member)", fmt.Sprint(tight), "1"},
			{"USSP (cluster union)", fmt.Sprint(ussp), f(float64(ussp) / float64(tight))},
		},
	}
	return []*Table{tbl, slack}, nil
}
