package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func small(t *testing.T) Datasets {
	t.Helper()
	d, err := DatasetsFor(Small)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink further for unit-test latency.
	d.Wiki.N, d.Wiki.T, d.Wiki.InitialEdges, d.Wiki.FinalEdges = 150, 10, 420, 1000
	d.DBLP.N, d.DBLP.T, d.DBLP.InitialPapers, d.DBLP.PapersPerDay = 150, 10, 130, 3
	d.Synthetic.V, d.Synthetic.EP, d.Synthetic.T, d.Synthetic.DeltaE = 150, 1350, 10, 10
	d.Patent.PatentsPerYear, d.Patent.Years = 4, 8
	d.Alphas = []float64{0.9, 0.97}
	d.Betas = []float64{0.05, 0.2}
	d.DeltaEs = []int{6, 10}
	return d
}

func TestDatasetsForScales(t *testing.T) {
	for _, s := range []Scale{Small, Medium, Paper} {
		if _, err := DatasetsFor(s); err != nil {
			t.Errorf("scale %s: %v", s, err)
		}
	}
	if _, err := DatasetsFor(Scale("nope")); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRegistryCoversPaperItems(t *testing.T) {
	want := []string{"fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "tblSolve", "tblBennett", "ablation", "parallel", "serving", "sparsesolve", "streaming", "persistence", "loadtest", "supernodal", "history"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
	}
	if _, err := Find("fig7"); err != nil {
		t.Error(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	d := small(t)
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(d)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			var buf bytes.Buffer
			for _, tbl := range tables {
				if len(tbl.Rows) == 0 {
					t.Errorf("%s: table %q empty", e.ID, tbl.Title)
				}
				tbl.Fprint(&buf)
			}
			if buf.Len() == 0 {
				t.Errorf("%s rendered nothing", e.ID)
			}
		})
	}
}

func TestFig7ShapeCLUDEWins(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		// Race instrumentation slows the linked-list container far
		// more than the array containers, so the speedup shape this
		// test asserts does not hold under -race (seed behavior, not a
		// regression).
		t.Skip("wall-clock shape assertions are unreliable under the race detector")
	}
	// The paper's headline: CLUDE beats INC in speedup at moderate α.
	d := small(t)
	tables, err := Fig7(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range tables {
		for _, row := range tbl.Rows {
			// At this tiny scale (T=10, negligible drift) INC can
			// legitimately lead — the paper's INC penalty needs
			// cumulative drift, demonstrated at small/medium scale in
			// EXPERIMENTS.md. The scale-robust invariant is that every
			// incremental algorithm beats recomputing from scratch.
			for col, name := range map[int]string{1: "INC", 2: "CINC", 3: "CLUDE"} {
				v, err := strconv.ParseFloat(row[col], 64)
				if err != nil {
					t.Fatalf("%s: bad cell %q", tbl.Title, row[col])
				}
				// Allow ~parity at the tightest alpha, where clusters
				// shrink toward singletons and the algorithms approach
				// BF by construction.
				if v < 0.7 {
					t.Errorf("%s alpha=%s: %s speedup %.2f far below BF parity", tbl.Title, row[0], name, v)
				}
			}
		}
	}
}

func TestTablePrintAligned(t *testing.T) {
	tbl := &Table{
		Title:  "t",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"xxx", "y"}},
	}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== t ==") || !strings.Contains(out, "xxx") {
		t.Errorf("bad render:\n%s", out)
	}
}

// TestHistoryReductionShape pins the history experiment's acceptance
// shape at a depth >= 64 run: base+delta retention at spacing 8 must
// shrink resident bytes by a multiple of clone-per-checkpoint, and the
// latency table must cover real replay depths.
func TestHistoryReductionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	d := small(t)
	d.Wiki.N, d.Wiki.T, d.Wiki.InitialEdges = 300, 70, 900
	tables, err := History(d)
	if err != nil {
		t.Fatal(err)
	}
	res := tables[0]
	if len(res.Rows) < 2 {
		t.Fatalf("resident-bytes table has %d rows, want baseline + spacings", len(res.Rows))
	}
	for _, row := range res.Rows[1:] {
		red, err := strconv.ParseFloat(strings.TrimSuffix(row[len(row)-1], "x"), 64)
		if err != nil {
			t.Fatalf("bad reduction cell %q", row[len(row)-1])
		}
		if red < 3.0 {
			t.Errorf("spacing %s: resident-bytes reduction %.1fx below the compression the feature exists for", row[0], red)
		}
	}
	lat := tables[1]
	if len(lat.Rows) < 4 {
		t.Errorf("latency table has %d depth rows, want a real replay sweep", len(lat.Rows))
	}
}
