package order

import (
	"testing"

	"repro/internal/sparse"
	"repro/internal/xrand"
)

func TestRCMValidPermutation(t *testing.T) {
	rng := xrand.New(700)
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(25)
		p := randomPattern(rng, n, 3*n, true)
		res := RCM(p)
		if !res.Ordering.Valid() {
			t.Fatalf("trial %d: invalid ordering", trial)
		}
		if res.SSPSize < n {
			t.Fatalf("trial %d: ssp %d below n", trial, res.SSPSize)
		}
	}
}

func TestRCMBandedChainIsOptimal(t *testing.T) {
	// A path graph ordered by RCM has bandwidth 1 and zero fill.
	n := 20
	coords := []sparse.Coord{}
	for i := 0; i < n; i++ {
		coords = append(coords, sparse.Coord{Row: i, Col: i})
		if i+1 < n {
			coords = append(coords, sparse.Coord{Row: i, Col: i + 1}, sparse.Coord{Row: i + 1, Col: i})
		}
	}
	p := sparse.NewPattern(n, coords)
	res := RCM(p)
	if want := n + 2*(n-1); res.SSPSize != want {
		t.Errorf("path RCM ssp = %d, want %d (zero fill)", res.SSPSize, want)
	}
}

func TestRCMHandlesDisconnected(t *testing.T) {
	// Two components plus an isolated vertex.
	p := sparse.NewPattern(5, []sparse.Coord{
		{Row: 0, Col: 0}, {Row: 1, Col: 1}, {Row: 2, Col: 2}, {Row: 3, Col: 3}, {Row: 4, Col: 4},
		{Row: 0, Col: 1}, {Row: 1, Col: 0},
		{Row: 2, Col: 3}, {Row: 3, Col: 2},
	})
	res := RCM(p)
	if !res.Ordering.Valid() {
		t.Fatal("invalid ordering on disconnected pattern")
	}
}

func TestRCMDeterministic(t *testing.T) {
	rng := xrand.New(701)
	p := randomPattern(rng, 30, 90, true)
	a, b := RCM(p), RCM(p)
	for i := range a.Ordering.Row {
		if a.Ordering.Row[i] != b.Ordering.Row[i] {
			t.Fatal("RCM not deterministic")
		}
	}
}

func TestMarkowitzBeatsRCMOnAverage(t *testing.T) {
	// Fill-reducing should beat bandwidth-reducing in aggregate on
	// random sparse patterns — the ablation claim of DESIGN.md §6.
	rng := xrand.New(702)
	mk, rcm := 0, 0
	for trial := 0; trial < 12; trial++ {
		n := 25 + rng.Intn(25)
		p := randomPattern(rng, n, 3*n, true)
		mk += Markowitz(p).SSPSize
		rcm += RCM(p).SSPSize
	}
	if mk >= rcm {
		t.Errorf("Markowitz total %d not better than RCM total %d", mk, rcm)
	}
}
