// Package order implements the fill-reducing matrix orderings the
// paper relies on: the Markowitz strategy (Markowitz 1957), the
// symmetric minimum-degree strategy used for the LUDEM-QC problem, and
// the natural (identity) ordering used as an ablation baseline.
//
// Both Markowitz and MinDegree perform a full symbolic elimination, so
// besides the ordering itself they return the size of the symbolic
// sparsity pattern |s̃p(A^O)| of the reordered matrix at no extra cost.
// For Markowitz this quantity is |s̃p(A*)| — the denominator of the
// paper's quality-loss measure (Definition 4) — which is why the BF
// baseline can score every other algorithm's orderings essentially for
// free. For symmetric matrices, MinDegree provides the paper's "very
// efficient, no physical decomposition" route to |s̃p(A*)| (§3) used by
// the LUDEM-QC algorithms.
package order

import (
	"repro/internal/lu"
	"repro/internal/sparse"
)

// Result is the outcome of an ordering computation.
type Result struct {
	// Ordering is the paper's O = (P, Q). Markowitz and MinDegree use
	// diagonal pivots, so the row and column permutations are the same
	// vertex sequence.
	Ordering sparse.Ordering
	// SSPSize is |s̃p(A^O)| — the symbolic sparsity pattern size of the
	// reordered matrix, including the diagonal.
	SSPSize int
}

// Natural returns the identity ordering together with its symbolic
// size. It is the "do nothing" baseline for ordering-quality ablations.
func Natural(p *sparse.Pattern) Result {
	n := p.N()
	o := sparse.IdentityOrdering(n)
	return Result{Ordering: o, SSPSize: lu.SymbolicSize(p, o)}
}
