package order

import (
	"sort"

	"repro/internal/lu"
	"repro/internal/sparse"
)

// RCM computes the reverse Cuthill–McKee ordering of a pattern's
// symmetrized adjacency structure. RCM minimizes bandwidth rather than
// fill, which makes it a useful *ablation* ordering in this repository:
// comparing Markowitz against RCM and Natural quantifies how much of
// the pipeline's win comes specifically from fill-reducing (as opposed
// to merely locality-improving) orderings. It is also the cheapest of
// the three non-trivial strategies — a plain BFS.
func RCM(p *sparse.Pattern) Result {
	n := p.N()
	// Symmetrized adjacency (off-diagonal).
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for _, j := range p.Row(i) {
			if i != j {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}
	deg := make([]int, n)
	for v := range adj {
		sort.Ints(adj[v])
		// Deduplicate after symmetrization.
		w := 0
		prev := -1
		for _, u := range adj[v] {
			if u != prev {
				adj[v][w] = u
				w++
				prev = u
			}
		}
		adj[v] = adj[v][:w]
		deg[v] = w
	}

	visited := make([]bool, n)
	orderOut := make([]int, 0, n)
	// Process components from lowest-degree unvisited roots, the
	// classic pseudo-peripheral heuristic simplified.
	roots := make([]int, n)
	for i := range roots {
		roots[i] = i
	}
	sort.Slice(roots, func(a, b int) bool {
		if deg[roots[a]] != deg[roots[b]] {
			return deg[roots[a]] < deg[roots[b]]
		}
		return roots[a] < roots[b]
	})
	queue := make([]int, 0, n)
	for _, r := range roots {
		if visited[r] {
			continue
		}
		visited[r] = true
		queue = append(queue[:0], r)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			orderOut = append(orderOut, v)
			// Enqueue unvisited neighbours by increasing degree.
			start := len(queue)
			for _, u := range adj[v] {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
			newly := queue[start:]
			sort.Slice(newly, func(a, b int) bool {
				if deg[newly[a]] != deg[newly[b]] {
					return deg[newly[a]] < deg[newly[b]]
				}
				return newly[a] < newly[b]
			})
		}
	}
	// Reverse (the "R" in RCM).
	for i, j := 0, len(orderOut)-1; i < j; i, j = i+1, j-1 {
		orderOut[i], orderOut[j] = orderOut[j], orderOut[i]
	}
	o := sparse.SymmetricOrdering(orderOut)
	return Result{Ordering: o, SSPSize: lu.SymbolicSize(p, o)}
}
