package order

import (
	"container/heap"

	"repro/internal/sparse"
)

// Markowitz computes the Markowitz ordering O*(A) of a pattern with a
// structurally non-zero diagonal (the evolving-graph matrices always
// have one; it is force-added if missing). At each elimination step the
// strategy picks the diagonal pivot v minimizing the Markowitz cost
// (r(v)−1)·(c(v)−1), where r and c are the active row and column
// counts; ties break toward the smaller vertex index for determinism.
//
// The computation is a full symbolic elimination — "generally as
// expensive as doing a Gaussian Elimination" as the paper notes (§3) —
// and SSPSize of the result is exactly |s̃p(A*)|.
func Markowitz(p *sparse.Pattern) Result {
	return eliminate(p, false)
}

// MinDegree computes a minimum-degree ordering of a structurally
// symmetric pattern (pattern asymmetries are symmetrized first, which
// matches the usual treatment). For symmetric matrices this coincides
// with the Markowitz strategy — cost (d−1)² is minimized exactly when
// degree d is — while doing half the bookkeeping; it is the "very
// efficient for symmetric matrices" route of paper §3 used by the
// LUDEM-QC algorithms.
func MinDegree(p *sparse.Pattern) Result {
	return eliminate(p, true)
}

// pivotCand is a heap candidate: vertex v proposed with cost c.
type pivotCand struct {
	cost int
	v    int
}

type candHeap []pivotCand

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, j int) bool {
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	return h[i].v < h[j].v
}
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(pivotCand)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// eliminate runs the greedy symbolic elimination shared by Markowitz
// and MinDegree. The active submatrix is kept as per-vertex hash sets
// of rows and columns (for the symmetric case a single set per vertex).
func eliminate(p *sparse.Pattern, symmetric bool) Result {
	n := p.N()
	rowSet := make([]map[int]struct{}, n) // rowSet[i]: active columns j with (i,j)
	colSet := make([]map[int]struct{}, n) // colSet[j]: active rows i with (i,j)
	for i := 0; i < n; i++ {
		rowSet[i] = make(map[int]struct{}, 8)
		if !symmetric {
			colSet[i] = make(map[int]struct{}, 8)
		}
	}
	if symmetric {
		colSet = rowSet
	}
	addEntry := func(i, j int) {
		rowSet[i][j] = struct{}{}
		colSet[j][i] = struct{}{}
	}
	for i := 0; i < n; i++ {
		addEntry(i, i) // diagonal is structurally required
		for _, j := range p.Row(i) {
			addEntry(i, j)
			if symmetric {
				addEntry(j, i)
			}
		}
	}

	cost := func(v int) int {
		if symmetric {
			d := len(rowSet[v]) - 1
			return d * d
		}
		return (len(rowSet[v]) - 1) * (len(colSet[v]) - 1)
	}

	curCost := make([]int, n)
	eliminated := make([]bool, n)
	h := make(candHeap, 0, n)
	for v := 0; v < n; v++ {
		curCost[v] = cost(v)
		h = append(h, pivotCand{curCost[v], v})
	}
	heap.Init(&h)

	pivots := make([]int, 0, n)
	sspSize := 0
	touched := make(map[int]struct{}, 64)

	for len(pivots) < n {
		cand := heap.Pop(&h).(pivotCand)
		v := cand.v
		if eliminated[v] || cand.cost != curCost[v] {
			continue // stale heap entry (lazy deletion)
		}
		eliminated[v] = true
		pivots = append(pivots, v)
		r := rowSet[v]
		c := colSet[v]
		sspSize += len(r) + len(c) - 1

		// Fill: every active (i, v) × (v, j) pair creates (i, j).
		clear(touched)
		for i := range c {
			if i == v {
				continue
			}
			for j := range r {
				if j == v {
					continue
				}
				if _, ok := rowSet[i][j]; !ok {
					rowSet[i][j] = struct{}{}
					colSet[j][i] = struct{}{}
				}
			}
		}
		// Detach v and record vertices whose degrees changed.
		for j := range r {
			if j != v {
				delete(colSet[j], v)
				touched[j] = struct{}{}
			}
		}
		for i := range c {
			if i != v {
				delete(rowSet[i], v)
				touched[i] = struct{}{}
			}
		}
		rowSet[v] = nil
		if !symmetric {
			colSet[v] = nil
		}
		for u := range touched {
			if eliminated[u] {
				continue
			}
			if nc := cost(u); nc != curCost[u] {
				curCost[u] = nc
				heap.Push(&h, pivotCand{nc, u})
			}
		}
	}
	return Result{Ordering: sparse.SymmetricOrdering(pivots), SSPSize: sspSize}
}
