package order

import (
	"testing"

	"repro/internal/lu"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

func randomPattern(rng *xrand.Rand, n, extra int, symmetric bool) *sparse.Pattern {
	coords := make([]sparse.Coord, 0, n+2*extra)
	for i := 0; i < n; i++ {
		coords = append(coords, sparse.Coord{Row: i, Col: i})
	}
	for k := 0; k < extra; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		coords = append(coords, sparse.Coord{Row: i, Col: j})
		if symmetric {
			coords = append(coords, sparse.Coord{Row: j, Col: i})
		}
	}
	return sparse.NewPattern(n, coords)
}

// arrowPattern has a dense first row and column: natural order fills
// completely, while any sensible fill-reducing order eliminates the
// hub last and produces zero fill.
func arrowPattern(n int) *sparse.Pattern {
	coords := []sparse.Coord{}
	for i := 0; i < n; i++ {
		coords = append(coords, sparse.Coord{Row: i, Col: i})
		if i > 0 {
			coords = append(coords, sparse.Coord{Row: i, Col: 0}, sparse.Coord{Row: 0, Col: i})
		}
	}
	return sparse.NewPattern(n, coords)
}

func TestMarkowitzSSPMatchesSymbolic(t *testing.T) {
	rng := xrand.New(600)
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(20)
		p := randomPattern(rng, n, 3*n, false)
		res := Markowitz(p)
		if !res.Ordering.Valid() {
			t.Fatalf("trial %d: invalid ordering", trial)
		}
		if got := lu.SymbolicSize(p, res.Ordering); got != res.SSPSize {
			t.Fatalf("trial %d: reported SSPSize %d, symbolic says %d", trial, res.SSPSize, got)
		}
	}
}

func TestMinDegreeSSPMatchesSymbolic(t *testing.T) {
	rng := xrand.New(601)
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(20)
		p := randomPattern(rng, n, 2*n, true)
		res := MinDegree(p)
		if !res.Ordering.Valid() {
			t.Fatalf("trial %d: invalid ordering", trial)
		}
		if got := lu.SymbolicSize(p, res.Ordering); got != res.SSPSize {
			t.Fatalf("trial %d: reported SSPSize %d, symbolic says %d", trial, res.SSPSize, got)
		}
	}
}

func TestMarkowitzBeatsNaturalOnArrow(t *testing.T) {
	n := 12
	p := arrowPattern(n)
	nat := Natural(p)
	mk := Markowitz(p)
	if nat.SSPSize != n*n {
		t.Errorf("natural arrow ssp = %d, want full %d", nat.SSPSize, n*n)
	}
	// Optimal: eliminate spokes first, hub last — no fill at all.
	want := n + 2*(n-1)
	if mk.SSPSize != want {
		t.Errorf("Markowitz arrow ssp = %d, want %d", mk.SSPSize, want)
	}
}

func TestMinDegreeOnArrow(t *testing.T) {
	n := 9
	p := arrowPattern(n)
	res := MinDegree(p)
	if want := n + 2*(n-1); res.SSPSize != want {
		t.Errorf("MinDegree arrow ssp = %d, want %d", res.SSPSize, want)
	}
}

func TestMarkowitzNeverWorseThanNaturalOnAverage(t *testing.T) {
	// Not a theorem, but on random patterns the greedy order should win
	// in aggregate by a wide margin; a regression here signals a broken
	// cost function.
	rng := xrand.New(602)
	natTotal, mkTotal := 0, 0
	for trial := 0; trial < 15; trial++ {
		n := 20 + rng.Intn(20)
		p := randomPattern(rng, n, 3*n, false)
		natTotal += Natural(p).SSPSize
		mkTotal += Markowitz(p).SSPSize
	}
	if mkTotal >= natTotal {
		t.Errorf("Markowitz total %d not better than natural total %d", mkTotal, natTotal)
	}
}

func TestMarkowitzDeterministic(t *testing.T) {
	rng := xrand.New(603)
	p := randomPattern(rng, 25, 80, false)
	a := Markowitz(p)
	b := Markowitz(p)
	for i := range a.Ordering.Row {
		if a.Ordering.Row[i] != b.Ordering.Row[i] {
			t.Fatal("Markowitz not deterministic")
		}
	}
	if a.SSPSize != b.SSPSize {
		t.Fatal("SSPSize not deterministic")
	}
}

func TestMinDegreeMatchesMarkowitzOnSymmetric(t *testing.T) {
	// On symmetric patterns the two greedy strategies optimize the same
	// objective; allow small differences from tie-breaking but require
	// near agreement.
	rng := xrand.New(604)
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(20)
		p := randomPattern(rng, n, 2*n, true)
		md := MinDegree(p).SSPSize
		mk := Markowitz(p).SSPSize
		ratio := float64(md) / float64(mk)
		if ratio > 1.25 || ratio < 0.8 {
			t.Errorf("trial %d: MinDegree %d vs Markowitz %d diverge too much", trial, md, mk)
		}
	}
}

func TestNaturalIdentity(t *testing.T) {
	p := randomPattern(xrand.New(605), 10, 20, false)
	res := Natural(p)
	for i, v := range res.Ordering.Row {
		if v != i {
			t.Fatal("Natural ordering is not the identity")
		}
	}
}

func TestMarkowitzDiagonalPattern(t *testing.T) {
	p := randomPattern(xrand.New(606), 8, 0, false)
	res := Markowitz(p)
	if res.SSPSize != 8 {
		t.Errorf("diagonal ssp = %d, want 8", res.SSPSize)
	}
}

func TestMarkowitzFactorizable(t *testing.T) {
	// The ordering must keep the diagonal structurally non-zero so the
	// pivot-free factorizer works on diagonally dominant matrices.
	rng := xrand.New(607)
	n := 30
	c := sparse.NewCOO(n)
	rowAbs := make([]float64, n)
	for k := 0; k < 4*n; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		v := rng.Float64() - 0.5
		c.Add(i, j, v)
		rowAbs[i] += 1 // overestimate |v|
	}
	for i := 0; i < n; i++ {
		c.Add(i, i, rowAbs[i]+1)
	}
	a := c.ToCSR()
	res := Markowitz(a.Pattern())
	if _, err := lu.FactorizeOrdered(a, res.Ordering); err != nil {
		t.Fatalf("Markowitz-ordered dominant matrix failed to factorize: %v", err)
	}
}
