// Package xrand provides a small, fast, deterministic pseudo-random
// number generator used by every dataset simulator and test in this
// repository. All randomness flows from an explicit seed so that every
// experiment is reproducible bit-for-bit across runs and platforms.
//
// The generator is splitmix64 (Steele, Lea, Flood; used as the seeding
// generator of xoshiro). It is not cryptographically secure and is not
// meant to be; it is statistically solid for simulation workloads and
// has a one-word state that is cheap to fork.
package xrand

import "math"

// Rand is a splitmix64 pseudo-random number generator. The zero value
// is a valid generator seeded with 0; prefer New for clarity.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Fork derives an independent generator from r. The derived stream is
// decorrelated from r's future output because it advances r once and
// then scrambles the drawn value into a fresh state.
func (r *Rand) Fork() *Rand {
	return &Rand{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed int in [0, n). It panics if
// n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation would be faster,
	// but modulo bias at our n (< 2^40) is far below 2^-20 and the
	// simulators only need statistical plausibility.
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniformly random permutation of [0, n) as a slice.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place using the Fisher-Yates algorithm.
func (r *Rand) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, generated with the Box-Muller transform.
func (r *Rand) NormFloat64() float64 {
	// Box-Muller; u1 in (0,1] to keep the log finite.
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Exp returns an exponentially distributed float64 with rate 1.
func (r *Rand) Exp() float64 {
	return -math.Log(1 - r.Float64())
}

// Zipf returns a value in [0, n) drawn from a truncated Zipf-like
// distribution with exponent s (s > 0): P(k) proportional to 1/(k+1)^s.
// It uses inverse-CDF sampling over a precomputed table when n is
// small, or rejection sampling otherwise. For the graph simulators a
// simple rejection loop is sufficient.
func (r *Rand) Zipf(n int, s float64) int {
	if n <= 0 {
		panic("xrand: Zipf called with n <= 0")
	}
	// Rejection sampling against the continuous envelope x^-s.
	for {
		x := math.Pow(1-r.Float64(), -1/(s-1+1e-12)) // heavy-tailed draw >= 1
		k := int(x) - 1
		if k < n {
			return k
		}
	}
}
