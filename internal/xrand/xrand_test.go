package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestForkDecorrelates(t *testing.T) {
	r := New(1)
	f := r.Fork()
	same := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == f.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Error("fork produced colliding stream")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + int(seed%50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square-ish sanity over 10 buckets.
	r := New(9)
	const n, k = 100000, 10
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		counts[r.Intn(k)]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-n/k) > 0.05*n/k {
			t.Errorf("bucket %d count %d deviates >5%%", b, c)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 50000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance %v", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(12)
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp()
		if v < 0 {
			t.Fatal("negative exponential draw")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.03 {
		t.Errorf("exponential mean %v", mean)
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := New(13)
	const n = 20000
	counts := make([]int, 50)
	for i := 0; i < n; i++ {
		v := r.Zipf(50, 2.0)
		if v < 0 || v >= 50 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] < counts[10] {
		t.Error("Zipf head not heavier than tail")
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(14)
	p := []int{5, 6, 7, 8, 9}
	r.Shuffle(p)
	sum := 0
	for _, v := range p {
		sum += v
	}
	if sum != 35 {
		t.Error("Shuffle lost elements")
	}
}
