#!/usr/bin/env bash
# Crash-recovery smoke test for cludeserve's durability layer: start a
# streaming server with a data directory, ingest edge deltas, record a
# query answer, SIGKILL the process mid-stream, restart it, and assert
# that (a) /stats reports the exact pre-kill version and (b) the same
# query returns the identical scores, and (c) the /v1/metrics
# exposition on the recovered server parses and reports the recovery
# (clude_store_recovered == 1, clude_stream_version == pre-kill
# version). The server runs with -history-base, so the run also proves
# the delta-compressed history survives the kill: the history.cluh
# sidecar plus WAL replay must leave a recent history version
# materializable on the recovered server with answers identical to the
# pre-kill ones. This is the end-to-end, real-binary companion to
# internal/store's kill-point property tests; CI runs it per PR.
# The server runs with -trace-sample 1, so the run also asserts the
# recovered server's request tracing end to end: /v1/traces must list
# the post-restart queries with the full resolve/admit/batch/solve
# stage set, the post-recovery ingest with its synthesized
# validate/apply/log/publish stages, and resolve a listed id by path.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="127.0.0.1:${SMOKE_PORT:-18431}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
DATA="$WORK/data"
SRV_FLAGS=(-stream -alg CLUDE -scale tiny -addr "$ADDR"
  -data-dir "$DATA" -fsync always -snapshot-every 4
  -batch 4 -flush-ms 50 -history-base 2 -trace-sample 1)
PID=""

cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

log() { echo "smoke: $*" >&2; }

wait_up() {
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/stats" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  log "server did not come up"
  [ -f "$WORK/server.log" ] && cat "$WORK/server.log" >&2
  return 1
}

json() { python3 -c "import json,sys; d=json.load(sys.stdin); print(eval(sys.argv[1], {}, {'d': d}))" "$1"; }

log "building cludeserve"
go build -o "$WORK/cludeserve" ./cmd/cludeserve

log "starting server ($DATA)"
"$WORK/cludeserve" "${SRV_FLAGS[@]}" >"$WORK/server.log" 2>&1 &
PID=$!
wait_up

log "ingesting deltas"
for i in $(seq 0 9); do
  a=$((i % 140)); b=$(( (i * 7 + 3) % 140 ))
  curl -fsS -X POST "$BASE/update?sync=1" \
    -d "{\"events\":[{\"from\":$a,\"to\":$b,\"op\":\"insert\"},{\"from\":$b,\"to\":$(((b+1)%140)),\"op\":\"insert\"}]}" \
    >/dev/null
done

PRE_VERSION=$(curl -fsS "$BASE/stats" | json "d['stream']['version']")
PRE_SCORES=$(curl -fsS "$BASE/query?measure=rwr&source=3" | json "d['scores']")
PRE_TOP=$(curl -fsS "$BASE/query?measure=topk&source=3&k=5" | json "d['nodes']")
log "pre-kill: version=$PRE_VERSION"
[ "$PRE_VERSION" -ge 1 ] || { log "no versions committed before kill"; exit 1; }
# A history version one behind the head: with -history-base 2 it is
# either a pinned base or a delta-materialized version; both must
# survive the kill below.
HIST_VERSION=$((PRE_VERSION - 1))
PRE_HIST=$(curl -fsS "$BASE/query?measure=rwr&source=3&snapshot=$HIST_VERSION" | json "d['scores']")

log "SIGKILL mid-stream"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

log "restarting from $DATA"
"$WORK/cludeserve" "${SRV_FLAGS[@]}" >"$WORK/server2.log" 2>&1 &
PID=$!
wait_up

POST_VERSION=$(curl -fsS "$BASE/stats" | json "d['stream']['version']")
RECOVERED=$(curl -fsS "$BASE/stats" | json "d['store']['recovery']['recovered']")
POST_SCORES=$(curl -fsS "$BASE/query?measure=rwr&source=3" | json "d['scores']")
POST_TOP=$(curl -fsS "$BASE/query?measure=topk&source=3&k=5" | json "d['nodes']")
log "post-restart: version=$POST_VERSION recovered=$RECOVERED"

FAIL=0
if [ "$RECOVERED" != "True" ]; then
  log "FAIL: restart did not recover from snapshot+WAL"; FAIL=1
fi
if [ "$POST_VERSION" != "$PRE_VERSION" ]; then
  log "FAIL: recovered version $POST_VERSION != pre-kill $PRE_VERSION"; FAIL=1
fi
if [ "$POST_SCORES" != "$PRE_SCORES" ]; then
  log "FAIL: recovered rwr scores differ from pre-kill answer"; FAIL=1
fi
if [ "$POST_TOP" != "$PRE_TOP" ]; then
  log "FAIL: recovered topk differs from pre-kill answer"; FAIL=1
fi

# Delta-compressed history across the kill: the recovered server must
# still list the old version as answerable and answer it identically.
HIST_LISTED=$(curl -fsS "$BASE/snapshots" | json "any(h['version'] == $HIST_VERSION for h in d.get('history', []))")
if [ "$HIST_LISTED" != "True" ]; then
  log "FAIL: recovered /v1/snapshots does not list history version $HIST_VERSION"; FAIL=1
fi
POST_HIST=$(curl -fsS "$BASE/query?measure=rwr&source=3&snapshot=$HIST_VERSION" | json "d['scores']")
if [ "$POST_HIST" != "$PRE_HIST" ]; then
  log "FAIL: recovered history version $HIST_VERSION answers differently"; FAIL=1
fi

# The recovered server's metrics exposition must parse (every line a
# comment or `series value`) and report the warm restart.
METRICS="$WORK/metrics.txt"
curl -fsS "$BASE/v1/metrics" >"$METRICS"
if ! python3 - "$METRICS" <<'EOF'
import sys

series = {}
with open(sys.argv[1]) as f:
    for n, line in enumerate(f, 1):
        line = line.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            sys.exit(f"line {n}: unparseable: {line!r}")
        if name in series:
            sys.exit(f"line {n}: duplicate series {name!r}")
        series[name] = float(value)

if series.get("clude_store_recovered") != 1:
    sys.exit(f"clude_store_recovered = {series.get('clude_store_recovered')}, want 1")
for required in ("clude_stream_version", "clude_wal_records_total",
                 "clude_store_replayed_batches", "clude_queries_total",
                 "clude_history_versions", "clude_history_base_pins_total"):
    if required not in series:
        sys.exit(f"missing series {required}")
EOF
then
  log "FAIL: /v1/metrics on the recovered server is malformed or missing recovery series"; FAIL=1
fi
METRICS_VERSION=$(python3 -c "
import sys
for line in open(sys.argv[1]):
    if line.startswith('clude_stream_version '):
        print(int(float(line.split()[1]))); break
" "$METRICS")
if [ "$METRICS_VERSION" != "$PRE_VERSION" ]; then
  log "FAIL: clude_stream_version $METRICS_VERSION != pre-kill $PRE_VERSION"; FAIL=1
fi

# A recovered server must keep ingesting: the WAL continues after the
# replayed tail.
curl -fsS -X POST "$BASE/update?sync=1" \
  -d '{"events":[{"from":1,"to":2,"op":"delete"}]}' >/dev/null
NEXT_VERSION=$(curl -fsS "$BASE/stats" | json "d['stream']['version']")
if [ "$NEXT_VERSION" -le "$POST_VERSION" ]; then
  log "FAIL: post-recovery ingest did not advance the version"; FAIL=1
fi

# Request tracing on the recovered server: the server runs with
# -trace-sample 1, so the queries above must be in the retained ring
# with the full serve-pipeline stage set, a listed id must resolve via
# /v1/traces/{id}, and the post-recovery ingest must have left a
# synthesized ingest trace with its stage spans.
TRACES="$WORK/traces.json"
curl -fsS "$BASE/v1/traces?limit=100" >"$TRACES"
if ! python3 - "$TRACES" <<'TRACECHECK'
import json, sys

d = json.load(open(sys.argv[1]))
traces = d.get("traces") or []
if not traces:
    sys.exit("no retained traces on the recovered server")
queries = [t for t in traces if t.get("name") == "query"]
ingests = [t for t in traces if t.get("name") == "ingest"]
if not queries:
    sys.exit("no retained query traces")
if not ingests:
    sys.exit("no retained ingest traces after post-recovery ingest")
want = {"resolve", "admit", "batch", "solve"}
got = set()
for t in queries:
    got |= {s.get("name") for s in t.get("spans") or []}
if not want <= got:
    sys.exit(f"query traces missing stages {sorted(want - got)} (saw {sorted(got)})")
iwant = {"validate", "apply", "log", "publish"}
igot = set()
for t in ingests:
    igot |= {s.get("name") for s in t.get("spans") or []}
if not iwant <= igot:
    sys.exit(f"ingest traces missing stages {sorted(iwant - igot)} (saw {sorted(igot)})")
TRACECHECK
then
  log "FAIL: /v1/traces on the recovered server is missing expected traces or stages"; FAIL=1
else
  TRACE_ID=$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['traces'][0]['trace_id'])" "$TRACES")
  if ! curl -fsS "$BASE/v1/traces/$TRACE_ID" >/dev/null; then
    log "FAIL: /v1/traces/$TRACE_ID did not resolve a listed trace id"; FAIL=1
  fi
fi

kill "$PID" 2>/dev/null && wait "$PID" 2>/dev/null || true
PID=""

if [ "$FAIL" -ne 0 ]; then
  log "server logs:"
  cat "$WORK/server.log" "$WORK/server2.log" >&2 || true
  exit 1
fi
log "OK: recovered to version $PRE_VERSION with bit-identical answers (live and history v$HIST_VERSION), a clean metrics exposition, and stage-complete query+ingest traces"
