#!/usr/bin/env bash
# Compare two BENCH_*.json artifacts (committed baseline vs. current
# run) and print per-table, per-row deltas. Informational by design:
# CI runners vary, so this surfaces the perf trajectory for a human to
# read rather than failing the build on a noisy latency cell. Exits
# non-zero only when the artifacts are unreadable or share no
# comparable tables (which usually means the experiment was renamed
# and the baseline should be regenerated).
#
# Usage: scripts/bench_compare.sh baseline.json current.json
set -euo pipefail

cd "$(dirname "$0")/.."

if [ "$#" -ne 2 ]; then
  echo "usage: $0 baseline.json current.json" >&2
  exit 2
fi

exec go run ./cmd/cludebench -compare "$1" "$2"
