// Command cludebench regenerates the paper's tables and figures on the
// simulated datasets.
//
// Usage:
//
//	cludebench -exp fig7 -scale medium
//	cludebench -exp all  -scale small
//	cludebench -exp serving -json results.json
//	cludebench -compare baseline.json current.json
//	cludebench -list
//
// Every experiment prints one or more aligned text tables carrying the
// same series the corresponding paper figure plots; EXPERIMENTS.md
// records a captured run next to the paper's reported numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (see -list) or \"all\"")
		scale    = flag.String("scale", "small", "dataset scale: small | medium | paper")
		list     = flag.Bool("list", false, "list experiments and exit")
		compare  = flag.Bool("compare", false, "compare two BENCH_*.json reports (args: baseline.json current.json) and exit")
		workers  = flag.Int("workers", 1, "engine worker pool per run: 1 = paper-faithful sequential, 0 = GOMAXPROCS")
		jsonPath = flag.String("json", "", "also write every result to this JSON file (machine-readable; the CI artifact format)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Paper)
		}
		return
	}

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare wants exactly two arguments: baseline.json current.json"))
		}
		old, err := bench.ReadReport(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		cur, err := bench.ReadReport(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		if bench.Compare(old, cur, os.Stdout) == 0 {
			fatal(fmt.Errorf("no comparable tables between %s and %s", flag.Arg(0), flag.Arg(1)))
		}
		return
	}

	d, err := bench.DatasetsFor(bench.Scale(*scale))
	if err != nil {
		fatal(err)
	}
	d.Workers = *workers

	var todo []bench.Experiment
	if *exp == "all" {
		todo = bench.Registry()
	} else {
		e, err := bench.Find(*exp)
		if err != nil {
			fatal(err)
		}
		todo = []bench.Experiment{e}
	}

	report := bench.NewReport()
	for _, e := range todo {
		fmt.Printf("\n### %s — %s (scale=%s)\n", e.ID, e.Paper, *scale)
		tables, elapsed, allocs, bytes, err := bench.RunMeasured(e, d)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		fmt.Printf("\n[%s completed in %v, %d allocs, %s]\n",
			e.ID, elapsed.Round(time.Millisecond), allocs, fmtBytes(bytes))
		report.Add(e, bench.Scale(*scale), d.Workers, elapsed, allocs, bytes, tables)
	}
	if *jsonPath != "" {
		if err := bench.WriteJSON(*jsonPath, report); err != nil {
			fatal(err)
		}
		fmt.Printf("\n[wrote %d results to %s]\n", len(report.Runs), *jsonPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cludebench:", err)
	os.Exit(1)
}

// fmtBytes renders an allocation total human-readably.
func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
