// Command cludebench regenerates the paper's tables and figures on the
// simulated datasets.
//
// Usage:
//
//	cludebench -exp fig7 -scale medium
//	cludebench -exp all  -scale small
//	cludebench -list
//
// Every experiment prints one or more aligned text tables carrying the
// same series the corresponding paper figure plots; EXPERIMENTS.md
// records a captured run next to the paper's reported numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (see -list) or \"all\"")
		scale   = flag.String("scale", "small", "dataset scale: small | medium | paper")
		list    = flag.Bool("list", false, "list experiments and exit")
		workers = flag.Int("workers", 1, "engine worker pool per run: 1 = paper-faithful sequential, 0 = GOMAXPROCS")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Paper)
		}
		return
	}

	d, err := bench.DatasetsFor(bench.Scale(*scale))
	if err != nil {
		fatal(err)
	}
	d.Workers = *workers

	var todo []bench.Experiment
	if *exp == "all" {
		todo = bench.Registry()
	} else {
		e, err := bench.Find(*exp)
		if err != nil {
			fatal(err)
		}
		todo = []bench.Experiment{e}
	}

	for _, e := range todo {
		fmt.Printf("\n### %s — %s (scale=%s)\n", e.ID, e.Paper, *scale)
		t0 := time.Now()
		tables, err := e.Run(d)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		fmt.Printf("\n[%s completed in %v]\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cludebench:", err)
	os.Exit(1)
}
