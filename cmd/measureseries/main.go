// Command measureseries reads an evolving graph sequence in the EGS
// text format (see cmd/egsgen) and prints the time series of a graph
// measure for a chosen node, computed with CLUDE-decomposed factors.
//
// Usage:
//
//	egsgen -v 500 -ep 4500 -t 40 | measureseries -measure pagerank -node 7
//	measureseries -in egs.txt -measure rwr -node 3 -seed-node 12
//
// Measures: pagerank (PR score of -node), rwr (RWR proximity of -node
// from -seed-node).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/measures"
)

func main() {
	var (
		in      = flag.String("in", "-", "EGS text file ('-' for stdin)")
		measure = flag.String("measure", "pagerank", "pagerank | rwr")
		node    = flag.Int("node", 0, "node whose score is reported")
		seed    = flag.Int("seed-node", 0, "random-walk seed node (rwr)")
		damping = flag.Float64("d", 0.85, "damping factor")
		alg     = flag.String("alg", "CLUDE", "LUDEM algorithm: BF | INC | CINC | CLUDE")
		alpha   = flag.Float64("alpha", 0.95, "clustering similarity threshold")
		topK    = flag.Int("key-moments", 3, "number of key moments to flag")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	egs, err := graph.ReadEGS(r)
	if err != nil {
		fatal(err)
	}
	if *node < 0 || *node >= egs.N() || *seed < 0 || *seed >= egs.N() {
		fatal(fmt.Errorf("node out of range [0,%d)", egs.N()))
	}

	opt := measures.SeriesOptions{
		Damping:   *damping,
		Algorithm: core.Algorithm(*alg),
		Alpha:     *alpha,
	}
	var series []float64
	switch *measure {
	case "pagerank":
		series, err = measures.Series(egs, opt, func(t int, e *measures.Engine) float64 {
			return e.PageRank()[*node]
		})
	case "rwr":
		series, err = measures.Series(egs, opt, func(t int, e *measures.Engine) float64 {
			return e.RWR(*seed)[*node]
		})
	default:
		err = fmt.Errorf("unknown measure %q", *measure)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("# %s of node %d over %d snapshots (alg=%s)\n", *measure, *node, egs.Len(), *alg)
	for t, v := range series {
		fmt.Printf("%d %.6e\n", t, v)
	}
	if km := measures.KeyMoments(series, *topK); len(km) > 0 {
		fmt.Printf("# key moments: %v\n", km)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "measureseries:", err)
	os.Exit(1)
}
