package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/serve"
)

// testServer builds a minimal live-mode handler: a tiny streaming
// engine attached to a one-worker serve engine.
func testServer(t *testing.T) (*httptest.Server, func()) {
	t.Helper()
	g := graph.New(6, false, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 4}, {From: 4, To: 5},
	})
	stream, err := core.NewStream(core.StreamConfig{
		Algorithm: core.INC,
		Initial:   g,
		Derive:    graph.RWRMatrix(0.85),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := serve.New(serve.Config{Damping: 0.85, Workers: 1})
	eng.AttachLive(stream)
	srv := httptest.NewServer(newMux(eng, stream, stream.NewBatcher(4, 0), nil))
	return srv, func() {
		srv.Close()
		stream.Close()
		eng.Close()
	}
}

func getJSON(t *testing.T, url string) (int, map[string]interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: non-JSON response: %v", url, err)
	}
	return resp.StatusCode, body
}

// TestQueryRejectsUnknownParams pins the contract that /query answers
// exactly the question asked: a typoed or foreign URL parameter is a
// 400 with a JSON error naming it, never a silently different answer.
func TestQueryRejectsUnknownParams(t *testing.T) {
	srv, done := testServer(t)
	defer done()

	code, _ := getJSON(t, srv.URL+"/query?measure=rwr&source=2")
	if code != http.StatusOK {
		t.Fatalf("valid query: status %d", code)
	}

	cases := []struct {
		name, url string
		wantIn    string
	}{
		{"typoed param", "/query?measure=rwr&sorce=2", "sorce"},
		{"foreign param", "/query?measure=pagerank&verbose=1", "verbose"},
		{"duplicate param", "/query?measure=rwr&source=2&source=3", "source"},
		{"malformed source", "/query?measure=rwr&source=two", "two"},
		{"malformed snapshot", "/query?measure=rwr&source=1&snapshot=x", "x"},
		{"malformed k", "/query?measure=topk&source=1&k=ten", "ten"},
		{"malformed sources", "/query?measure=ppr&sources=1,zz", "zz"},
		{"malformed damping", "/query?measure=rwr&source=1&damping=high", "high"},
	}
	for _, tc := range cases {
		code, body := getJSON(t, srv.URL+tc.url)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
			continue
		}
		msg, _ := body["error"].(string)
		if msg == "" {
			t.Errorf("%s: 400 without JSON error field", tc.name)
		} else if !strings.Contains(msg, tc.wantIn) {
			t.Errorf("%s: error %q does not name the offender %q", tc.name, msg, tc.wantIn)
		}
	}
}

// TestQueryPostRejectsUnknownFields is the JSON-body twin.
func TestQueryPostRejectsUnknownFields(t *testing.T) {
	srv, done := testServer(t)
	defer done()

	resp, err := http.Post(srv.URL+"/query", "application/json",
		strings.NewReader(`{"measure":"rwr","source":1,"sorce":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown JSON field: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/query", "application/json",
		strings.NewReader(`{"measure":"rwr","source":1,"snapshot":-1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid JSON query: status %d, want 200", resp.StatusCode)
	}
}

// TestUpdateAndStatsEndpoints smoke-tests the ingest + stats loop the
// crash-recovery CI job drives over a real binary.
func TestUpdateAndStatsEndpoints(t *testing.T) {
	srv, done := testServer(t)
	defer done()

	resp, err := http.Post(srv.URL+"/update?sync=1", "application/json",
		strings.NewReader(`{"events":[{"from":0,"to":5,"op":"insert"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync update: status %d", resp.StatusCode)
	}
	if v, _ := out["version"].(float64); v != 1 {
		t.Fatalf("sync update version = %v, want 1", out["version"])
	}

	code, stats := getJSON(t, srv.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats: status %d", code)
	}
	stream, _ := stats["stream"].(map[string]interface{})
	if stream == nil {
		t.Fatal("/stats missing stream section in streaming mode")
	}
	if v, _ := stream["version"].(float64); v != 1 {
		t.Errorf("stream version in /stats = %v, want 1", stream["version"])
	}
}
