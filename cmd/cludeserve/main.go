// Command cludeserve factors an evolving matrix sequence with CLUDE,
// pins every snapshot's LU factors, and serves proximity-measure
// queries over HTTP/JSON — the paper's motivating deployment: cheap
// per-query substitutions on maintained factors.
//
// Usage:
//
//	cludeserve -addr :8080 -scale small -alpha 0.95
//
// Endpoints:
//
//	GET /query?measure=rwr&source=5[&snapshot=3]     RWR vector from node 5
//	GET /query?measure=ppr&sources=1,2,3             PPR over a seed set
//	GET /query?measure=pagerank                      global PageRank
//	GET /query?measure=topk&source=5&k=10            top-10 nodes by RWR
//	POST /query  {"measure":"rwr","source":5}        same, JSON body
//	GET /snapshots                                   retained snapshot ids
//	GET /stats                                       serving counters
//
// snapshot defaults to -1 (the latest pinned snapshot).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		scale     = flag.String("scale", "small", "dataset scale: tiny | small | medium | paper")
		alpha     = flag.Float64("alpha", 0.95, "CLUDE clustering threshold")
		workers   = flag.Int("workers", 0, "query pool size (0 = GOMAXPROCS)")
		factorW   = flag.Int("factor-workers", 0, "factorization pool size (0 = GOMAXPROCS)")
		cacheSize = flag.Int("cache", 4096, "LRU result-cache entries")
		maxSnaps  = flag.Int("snapshots", 0, "snapshot store bound (0 = retain the whole sequence)")
		reachFrac = flag.Float64("sparse-frac", 0, "reach-fraction cap of the sparse solve path (0 = default heuristic, >=1 = always sparse, <0 = always dense)")
	)
	flag.Parse()

	d, err := bench.DatasetsFor(bench.Scale(*scale))
	if err != nil {
		fatal(err)
	}
	egs, err := gen.WikiSim(d.Wiki)
	if err != nil {
		fatal(err)
	}
	ems := graph.DeriveEMS(egs, graph.RWRMatrix(d.Damping))
	bound := *maxSnaps
	if bound <= 0 {
		bound = ems.Len()
	}
	eng := serve.New(serve.Config{
		MaxSnapshots:    bound,
		Workers:         *workers,
		CacheSize:       *cacheSize,
		Damping:         d.Damping,
		SparseReachFrac: *reachFrac,
	})
	defer eng.Close()

	log.Printf("factoring %d snapshots (n=%d) with CLUDE alpha=%v ...", ems.Len(), ems.N(), *alpha)
	t0 := time.Now()
	if _, err := core.Run(ems, core.CLUDE, core.Options{
		Alpha:         *alpha,
		Workers:       *factorW,
		RetainFactors: true,
		OnFactors:     eng.OnFactors(),
	}); err != nil {
		fatal(err)
	}
	log.Printf("pinned %d snapshots in %v; serving on %s", len(eng.Snapshots()), time.Since(t0).Round(time.Millisecond), *addr)

	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		q, err := parseQuery(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		resp, err := eng.Query(r.Context(), q)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/snapshots", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]interface{}{
			"retained": eng.Snapshots(),
			"latest":   eng.Latest(),
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		st := eng.Stats()
		writeJSON(w, map[string]interface{}{
			"stats":    st,
			"hit_rate": st.HitRate(),
		})
	})

	srv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	log.Printf("shut down; final stats: %+v", eng.Stats())
}

// parseQuery accepts either URL parameters (GET) or a JSON body (POST)
// shaped like serve.Query.
func parseQuery(r *http.Request) (serve.Query, error) {
	q := serve.Query{Snapshot: -1}
	if r.Method == http.MethodPost {
		if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
			return q, fmt.Errorf("bad JSON body: %w", err)
		}
		return q, nil
	}
	v := r.URL.Query()
	q.Measure = v.Get("measure")
	var err error
	if s := v.Get("snapshot"); s != "" {
		if q.Snapshot, err = strconv.Atoi(s); err != nil {
			return q, fmt.Errorf("bad snapshot %q", s)
		}
	}
	if s := v.Get("source"); s != "" {
		if q.Source, err = strconv.Atoi(s); err != nil {
			return q, fmt.Errorf("bad source %q", s)
		}
	}
	if s := v.Get("k"); s != "" {
		if q.K, err = strconv.Atoi(s); err != nil {
			return q, fmt.Errorf("bad k %q", s)
		}
	}
	if s := v.Get("sources"); s != "" {
		for _, part := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return q, fmt.Errorf("bad sources entry %q", part)
			}
			q.Sources = append(q.Sources, n)
		}
	}
	if s := v.Get("damping"); s != "" {
		if q.Damping, err = strconv.ParseFloat(s, 64); err != nil {
			return q, fmt.Errorf("bad damping %q", s)
		}
	}
	return q, nil
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, serve.ErrUnknownSnapshot), errors.Is(err, serve.ErrNoSnapshots):
		return http.StatusNotFound
	case errors.Is(err, serve.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// fatal matches cludebench's exit convention.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cludeserve:", err)
	os.Exit(1)
}
