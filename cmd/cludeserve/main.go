// Command cludeserve serves proximity-measure queries over HTTP/JSON —
// the paper's motivating deployment: cheap per-query substitutions on
// maintained LU factors.
//
// It runs in one of two modes:
//
//   - Offline (default): factor a pre-generated evolving matrix
//     sequence with CLUDE, pin every snapshot's factors, and serve
//     snapshot-addressed queries.
//   - Streaming (-stream): start from the sequence's first snapshot and
//     maintain the factors live. Edge updates arrive over POST
//     /v1/update, are grouped into versioned batches, and each
//     committed batch is hot-published into the serving layer without
//     copying the factors (see docs/STREAMING.md). Latest-state queries
//     answer from the live factors; -checkpoint k additionally pins a
//     clone every k versions so recent history stays queryable by
//     snapshot. -history-base k replaces that clone-per-checkpoint
//     retention with delta-compressed history: only every k-th version
//     (plus structural rebuilds) is pinned as a full clone, and any
//     version in between is materialized on demand by replaying its
//     recorded Bennett rank-1 deltas from the nearest base —
//     bit-identical factors at a fraction of the resident bytes.
//     -history-budget bounds the bytes the LRU of materialized
//     versions may hold; /v1/snapshots marks each answerable version
//     "resident" or "materializable".
//
// Usage:
//
//	cludeserve -addr :8080 -scale small -alpha 0.95
//	cludeserve -stream -alg CLUDE -batch 64 -flush-ms 200 -checkpoint 32
//	cludeserve -stream -history-base 16 -history-budget 268435456
//	cludeserve -stream -data-dir /var/lib/clude -fsync always -snapshot-every 32
//
// With -data-dir the streaming engine is durable: every ingest batch is
// written to a WAL before it mutates the factors (fsync per -fsync),
// background factor snapshots are taken every -snapshot-every versions,
// and on boot the server warm-restarts from the newest valid snapshot
// plus the WAL tail — at the exact pre-crash version, without a cold
// refactorization (see docs/PERSISTENCE.md). In both modes -data-dir
// also gives the snapshot store disk-backed eviction: cold pinned
// snapshots spill to <data-dir>/spill and reload transparently when
// queried.
//
// The HTTP surface is the versioned /v1 API of internal/api (see
// docs/API.md for the endpoint and metric reference); the bare legacy
// paths (/query, /update, /snapshots, /stats) alias the same handlers.
// Every subsystem's counters are exported both as JSON (/v1/stats) and
// as Prometheus text exposition (/v1/metrics) from one shared registry,
// including per-stage latency histograms of the query pipeline
// (resolve/coalesce/admit/batch/solve) and — in streaming mode — the
// ingest (validate/log/apply/publish) and durability
// (wal_append/snapshot/compaction) pipelines, plus the Go runtime
// series (goroutines, heap, GC pauses, build info).
//
// Request-scoped tracing (docs/OBSERVABILITY.md) is on by default:
// every query gets a W3C-traceparent-compatible trace threaded through
// the whole pipeline, and tail-based retention keeps errors, queries
// slower than -slow-query-ms, and a -trace-sample fraction of the rest
// in a -trace-buffer ring served at /v1/traces and /v1/traces/{id}.
// Slow traces additionally emit a rate-limited WARN log line carrying
// the trace id. -debug-addr starts a second, private listener with
// pprof and expvar; it never shares the public mux. -log-format=json
// switches the structured log to JSON.
//
// The query path is the admission-controlled pipeline of
// docs/SERVING.md: identical concurrent queries coalesce into one
// solve, compatible queued queries solve as one blocked multi-RHS
// substitution (-solve-batch), and when the bounded queue (-queue) is
// full the server sheds load immediately with HTTP 429 and a
// Retry-After header instead of letting the backlog grow. A
// -query-timeout bounds each query's time in the pipeline.
//
// On SIGINT/SIGTERM the server stops accepting requests, drains
// in-flight queries and the ingest queue, and only then shuts the
// engines down; a second signal force-kills.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/trace"
)

// version identifies the build in clude_build_info and the startup
// log line; override with -ldflags "-X main.version=v1.2.3".
var version = "dev"

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		scale     = flag.String("scale", "small", "dataset scale: tiny | small | medium | paper")
		alpha     = flag.Float64("alpha", 0.95, "CLUDE/CINC clustering threshold")
		workers   = flag.Int("workers", 0, "query pool size (0 = GOMAXPROCS)")
		factorW   = flag.Int("factor-workers", 0, "offline factorization pool size (0 = GOMAXPROCS)")
		cacheSize = flag.Int("cache", 4096, "LRU result-cache entries")
		maxSnaps  = flag.Int("snapshots", 0, "snapshot store bound (0 = retain the whole sequence)")
		reachFrac = flag.Float64("sparse-frac", 0, "reach-fraction cap of the sparse solve path (0 = default heuristic, >=1 = always sparse, <0 = always dense)")
		queueLen  = flag.Int("queue", 0, "admission queue depth; a full queue sheds with HTTP 429 (0 = 8x workers)")
		batchMax  = flag.Int("solve-batch", 0, "max queued queries grouped into one blocked multi-RHS solve (0 = default, 1 = disable batching)")
		queryTO   = flag.Duration("query-timeout", 0, "per-query deadline covering queue wait and solve (0 = none)")
		panelMinW = flag.Int("panel-min-width", 0, "min mean panel width for the supernodal blocked-solve route (0 = auto heuristic, <0 = disable panels)")

		streaming  = flag.Bool("stream", false, "streaming mode: live edge-delta ingestion via POST /v1/update")
		algName    = flag.String("alg", "CLUDE", "streaming maintenance strategy: BF | INC | CINC | CLUDE")
		batchSize  = flag.Int("batch", 64, "streaming: events per ingest batch")
		flushMS    = flag.Int("flush-ms", 200, "streaming: max linger before a partial batch commits (0 = size-only)")
		checkpoint = flag.Int("checkpoint", 0, "streaming: pin a factor clone every k versions (0 = never)")
		histBase   = flag.Int("history-base", 0, "streaming: delta-compressed history — pin a base clone every k versions and serve the versions between them by Bennett delta replay (0 = disabled; replaces -checkpoint)")
		histBudget = flag.Int64("history-budget", 0, "streaming: byte budget for LRU-cached materialized history versions (0 = 64 MiB default)")

		dataDir   = flag.String("data-dir", "", "durability directory: WAL + factor snapshots (streaming), snapshot spill (both modes); empty = memory only")
		fsyncMode = flag.String("fsync", "always", "WAL fsync policy: always | none")
		snapEvery = flag.Uint64("snapshot-every", 32, "streaming: background factor snapshot every k versions")

		traceBuf    = flag.Int("trace-buffer", 256, "retained-trace ring size; 0 disables tracing entirely")
		slowQueryMS = flag.Int("slow-query-ms", 20, "retain (and rate-limitedly log) every trace at least this slow; 0 disables slow retention")
		traceSample = flag.Float64("trace-sample", 0.001, "fraction of healthy, fast traces to retain anyway [0,1]")
		debugAddr   = flag.String("debug-addr", "", "opt-in debug listener (pprof + expvar), kept off the public mux; empty = disabled")
		logFormat   = flag.String("log-format", "text", "log output format: text | json")
	)
	flag.Parse()

	switch *logFormat {
	case "json":
		slog.SetDefault(slog.New(slog.NewJSONHandler(os.Stderr, nil)))
	case "text":
		slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	default:
		fatal(fmt.Errorf("unknown -log-format %q (want text or json)", *logFormat))
	}

	d, err := bench.DatasetsFor(bench.Scale(*scale))
	if err != nil {
		fatal(err)
	}
	egs, err := gen.WikiSim(d.Wiki)
	if err != nil {
		fatal(err)
	}

	// One registry serves every subsystem: the engine, stream and store
	// re-register their live counters into it (api.New), and the stage
	// hooks below feed its histograms directly.
	reg := metrics.NewRegistry()
	metrics.RegisterRuntime(reg, version)

	// One tracer serves every pipeline; nil (with -trace-buffer 0)
	// keeps each of them on the untraced fast path.
	var tracer *trace.Tracer
	if *traceBuf > 0 {
		tracer = trace.New(trace.Config{
			Buffer:   *traceBuf,
			Slow:     time.Duration(*slowQueryMS) * time.Millisecond,
			Sample:   *traceSample,
			OnRetain: slowQueryLogger(time.Second),
		})
	}

	scfg := serve.Config{
		MaxSnapshots:    snapshotBound(*maxSnaps, egs.Len()),
		Workers:         *workers,
		CacheSize:       *cacheSize,
		Damping:         d.Damping,
		SparseReachFrac: *reachFrac,
		QueueDepth:      *queueLen,
		BatchMax:        *batchMax,
		PanelMinWidth:   *panelMinW,
		QueryTimeout:    *queryTO,
		Tracer:          tracer,
	}
	if *streaming {
		scfg.HistoryBase = *histBase
		scfg.HistoryBudgetBytes = *histBudget
	}
	if *dataDir != "" {
		// Evicted pinned snapshots spill to disk instead of vanishing,
		// in both modes.
		scfg.SpillDir = filepath.Join(*dataDir, "spill")
	}
	eng := serve.New(scfg)

	var st *store.Store
	if *streaming && *dataDir != "" {
		policy, perr := store.ParseSyncPolicy(*fsyncMode)
		if perr != nil {
			eng.Close()
			fatal(perr)
		}
		st, err = store.Open(*dataDir, store.Options{
			Sync:          policy,
			SnapshotEvery: *snapEvery,
			OnStage:       api.ChainStageHooks(api.StoreStageHook(reg), api.StoreTraceHook(tracer)),
			History:       *histBase > 0,
		})
		if err != nil {
			eng.Close()
			fatal(err)
		}
	}

	var stream *core.Stream
	var batcher *core.Batcher
	if *streaming {
		stream, batcher, err = startStream(eng, st, reg, tracer, egs, d.Damping, *algName, *alpha, *batchSize, *flushMS, *checkpoint, *histBase)
		if err == nil {
			// katz queries answer from the live builder's graph.
			eng.AttachGraphs(api.StreamGraphs(stream))
		}
	} else {
		err = factorOffline(eng, egs, d.Damping, *alpha, *factorW)
		eng.AttachGraphs(api.EGSGraphs(egs))
	}
	if err != nil {
		eng.Close()
		fatal(err)
	}

	handler := api.New(api.Options{
		Engine:   eng,
		Stream:   stream,
		Batcher:  batcher,
		Store:    st,
		Registry: reg,
		Tracer:   tracer,
	})
	srv := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	if *debugAddr != "" {
		// The debug listener is its own server on its own mux: pprof
		// and expvar never appear on the public address.
		go func() {
			slog.Info("debug server listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, debugMux()); err != nil {
				slog.Error("debug server", "err", err)
			}
		}()
	}
	slog.Info("serving", "addr", *addr, "version", version, "tracing", tracer != nil)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			eng.Close()
			fatal(err)
		}
	case <-ctx.Done():
		// First signal: drain. stop() restores default signal handling,
		// so a second signal force-kills a wedged shutdown.
		stop()
		slog.Info("signal received; draining in-flight queries")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			slog.Error("http shutdown", "err", err)
		}
		<-errCh // ListenAndServe has returned ErrServerClosed
	}

	// HTTP is quiet; now drain the ingest queue and stop the engines.
	if batcher != nil {
		slog.Info("draining ingest queue", "pending", batcher.Pending())
		if err := batcher.Close(); err != nil {
			slog.Error("ingest drain", "err", err)
		}
	}
	if stream != nil {
		slog.Info("stream final", "stats", fmt.Sprintf("%+v", stream.Stats()))
		stream.Close()
	}
	if st != nil {
		// Final checkpoint: a clean restart replays nothing.
		if err := st.Close(); err != nil {
			slog.Error("store close", "err", err)
		}
	}
	eng.Close()
	slog.Info("shut down", "stats", fmt.Sprintf("%+v", eng.Stats()))
}

// slowQueryLogger builds the tracer's OnRetain consumer: slow-tagged
// traces become WARN log lines carrying the trace id (the /v1/traces
// join key), throttled to one line per minInterval so a latency storm
// cannot drown the log while the ring still retains every trace.
func slowQueryLogger(minInterval time.Duration) func(*trace.TraceData) {
	var last atomic.Int64
	return func(td *trace.TraceData) {
		if td.Reason != trace.ReasonSlow {
			return
		}
		now := time.Now().UnixNano()
		prev := last.Load()
		if now-prev < int64(minInterval) || !last.CompareAndSwap(prev, now) {
			return
		}
		slog.Warn("slow query",
			"trace_id", td.TraceID,
			"name", td.Name,
			"duration_us", td.DurationUS,
			"spans", len(td.Spans),
			"attrs", td.Attrs)
	}
}

// debugMux is the opt-in diagnostics surface behind -debug-addr:
// net/http/pprof and expvar, deliberately registered on a private mux
// so the public API never exposes them.
func debugMux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/debug/pprof/", pprof.Index)
	m.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	m.HandleFunc("/debug/pprof/profile", pprof.Profile)
	m.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	m.HandleFunc("/debug/pprof/trace", pprof.Trace)
	m.Handle("/debug/vars", expvar.Handler())
	return m
}

// snapshotBound resolves the -snapshots flag (0 = the whole sequence).
func snapshotBound(flagVal, seqLen int) int {
	if flagVal > 0 {
		return flagVal
	}
	return seqLen
}

// factorOffline is the classic mode: run CLUDE over the materialized
// sequence and pin every snapshot.
func factorOffline(eng *serve.Engine, egs *graph.EGS, damping, alpha float64, factorW int) error {
	ems := graph.DeriveEMS(egs, graph.RWRMatrix(damping))
	slog.Info("factoring snapshots", "count", ems.Len(), "n", ems.N(), "alg", "CLUDE", "alpha", alpha)
	t0 := time.Now()
	if _, err := core.Run(ems, core.CLUDE, core.Options{
		Alpha:         alpha,
		Workers:       factorW,
		RetainFactors: true,
		OnFactors:     eng.OnFactors(),
	}); err != nil {
		return err
	}
	slog.Info("pinned snapshots", "count", len(eng.Snapshots()), "elapsed", time.Since(t0).Round(time.Millisecond))
	return nil
}

// startStream is the live mode: seed a streaming engine with the first
// snapshot (or, with a durability store, recover the pre-crash state
// from its newest snapshot plus the WAL tail), attach it as the serve
// layer's live source, and return the ingest batcher POST /v1/update
// feeds. A fatal dataset mismatch aside, a recovered boot serves the
// exact factors the crashed process last published.
func startStream(eng *serve.Engine, st *store.Store, reg *metrics.Registry, tracer *trace.Tracer, egs *graph.EGS, damping float64, algName string, alpha float64, batchSize, flushMS, checkpoint, histBase int) (*core.Stream, *core.Batcher, error) {
	cfg := core.StreamConfig{
		Algorithm: core.Algorithm(strings.ToUpper(algName)),
		Alpha:     alpha,
		Initial:   egs.Snapshots[0],
		Derive:    graph.RWRMatrix(damping),
		OnStage:   api.IngestStageHook(reg),
		OnBatch:   api.IngestTraceHook(tracer),
	}
	switch {
	case histBase > 0:
		// Delta-compressed history: bases pin every histBase versions,
		// everything between is materialized on demand by replaying the
		// recorded Bennett deltas. Subsumes -checkpoint.
		if checkpoint > 0 {
			slog.Warn("-history-base set; ignoring -checkpoint (history pins its own bases)")
		}
		if st != nil {
			// Seed BEFORE OpenStream: WAL replay re-fires OnHistory, and
			// those records must land on top of the persisted window
			// rather than reset it.
			eng.SeedHistory(st.LoadHistory())
			// The sidecar compacts in step with the engine's retention:
			// when the oldest materializable version advances, the dead
			// records are rewritten away at the next snapshot cycle.
			eng.OnHistoryTrim(st.TrimHistory)
		}
		cfg.OnHistory = eng.HistoryHook()
	case checkpoint > 0:
		cfg.OnPublish = eng.CheckpointEvery(uint64(checkpoint))
	}
	t0 := time.Now()
	var stream *core.Stream
	var err error
	if st != nil {
		var info store.RecoveryInfo
		stream, info, err = st.OpenStream(cfg)
		if err != nil {
			return nil, nil, err
		}
		if info.Recovered {
			slog.Info("warm restart",
				"snapshot_version", info.SnapshotVersion,
				"replayed_batches", info.ReplayedBatches,
				"version", info.Version,
				"elapsed", time.Since(t0).Round(time.Millisecond))
		} else {
			slog.Info("cold start with durability (initial snapshot written)", "dir", st.Dir())
		}
	} else {
		stream, err = core.NewStream(cfg)
		if err != nil {
			return nil, nil, err
		}
	}
	eng.AttachLive(stream)
	retention := fmt.Sprintf("checkpoint every %d", checkpoint)
	if histBase > 0 {
		retention = fmt.Sprintf("history base every %d", histBase)
	}
	slog.Info("streaming",
		"alg", string(cfg.Algorithm), "n", stream.N(),
		"boot", time.Since(t0).Round(time.Millisecond),
		"batch", batchSize, "linger_ms", flushMS, "retention", retention)
	return stream, stream.NewBatcher(batchSize, time.Duration(flushMS)*time.Millisecond), nil
}

// fatal matches cludebench's exit convention.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cludeserve:", err)
	os.Exit(1)
}
