// Command egsgen generates a synthetic evolving graph sequence with the
// paper's generator (§6) and writes it in one of two trivial text
// formats that downstream tooling in any language can consume:
//
//   - Default: the snapshot-sequence format ("egs ..."), one full edge
//     list per snapshot (see graph.WriteEGS).
//   - -deltas: the edge-event stream format ("egsdeltas ..."), the
//     initial snapshot followed by one insert/delete batch per step —
//     the streaming engine's native input (see graph.WriteDeltas), so
//     benchmarks, tests, and live ingestion share one generator.
//
// Usage:
//
//	egsgen -v 2000 -ep 18000 -d 5 -k 4 -deltae 40 -t 60 -seed 1 > egs.txt
//	egsgen -deltas -v 2000 -t 60 > egs_deltas.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var cfg gen.SyntheticConfig
	var seed uint64
	var deltas bool
	flag.IntVar(&cfg.V, "v", 2000, "number of vertices")
	flag.IntVar(&cfg.EP, "ep", 18000, "edge pool size")
	flag.IntVar(&cfg.D, "d", 5, "average degree of first snapshot")
	flag.IntVar(&cfg.K, "k", 4, "ratio deltaE+/deltaE-")
	flag.IntVar(&cfg.DeltaE, "deltae", 40, "edge changes per step")
	flag.IntVar(&cfg.T, "t", 60, "snapshots")
	flag.Uint64Var(&seed, "seed", 1, "PRNG seed")
	flag.BoolVar(&deltas, "deltas", false, "emit the edge-event stream format instead of full snapshots")
	flag.Parse()
	cfg.Seed = seed

	egs, err := gen.Synthetic(cfg)
	if err != nil {
		fatal(err)
	}
	if deltas {
		err = graph.WriteDeltas(os.Stdout, egs.Snapshots[0], graph.DeltaBatches(egs))
	} else {
		err = graph.WriteEGS(os.Stdout, egs)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "egsgen:", err)
	os.Exit(1)
}
