// Command egsgen generates a synthetic evolving graph sequence with the
// paper's generator (§6) and writes it as a simple text format: one
// header line "egs <V> <T> <directed>" followed, per snapshot, by a
// line "snapshot <t> <edges>" and one "u v" line per edge.
//
// Usage:
//
//	egsgen -v 2000 -ep 18000 -d 5 -k 4 -deltae 40 -t 60 -seed 1 > egs.txt
//
// The format is deliberately trivial so downstream tooling in any
// language can consume it.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
)

func main() {
	var cfg gen.SyntheticConfig
	var seed uint64
	flag.IntVar(&cfg.V, "v", 2000, "number of vertices")
	flag.IntVar(&cfg.EP, "ep", 18000, "edge pool size")
	flag.IntVar(&cfg.D, "d", 5, "average degree of first snapshot")
	flag.IntVar(&cfg.K, "k", 4, "ratio deltaE+/deltaE-")
	flag.IntVar(&cfg.DeltaE, "deltae", 40, "edge changes per step")
	flag.IntVar(&cfg.T, "t", 60, "snapshots")
	flag.Uint64Var(&seed, "seed", 1, "PRNG seed")
	flag.Parse()
	cfg.Seed = seed

	egs, err := gen.Synthetic(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "egsgen:", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "egs %d %d %t\n", egs.N(), egs.Len(), egs.Snapshots[0].Directed())
	for t, g := range egs.Snapshots {
		es := g.Edges()
		fmt.Fprintf(w, "snapshot %d %d\n", t, len(es))
		for _, e := range es {
			fmt.Fprintf(w, "%d %d\n", e.From, e.To)
		}
	}
}
